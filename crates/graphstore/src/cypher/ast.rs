//! Cypher abstract syntax.

/// A literal. Parsed Cypher text produces `Str`; the typed
/// `StorageBackend` lowering produces `Sym` — a pre-resolved handle into
/// the shared dictionary, evaluated without a dictionary lookup.
#[derive(Clone, PartialEq, Debug)]
pub enum CLit {
    Int(i64),
    Str(String),
    Sym(raptor_common::Sym),
}

/// `var.prop`
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct PropRef {
    pub var: String,
    pub prop: String,
}

impl std::fmt::Display for PropRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}", self.var, self.prop)
    }
}

/// A node pattern `(var:Label {k: v, ...})`; every part optional.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct NodePattern {
    pub var: Option<String>,
    pub label: Option<String>,
    pub props: Vec<(String, CLit)>,
}

/// Length spec of a relationship: `None` = exactly one hop;
/// `Some((min, max))` = variable-length with optional bounds
/// (`*` = 1.., `*2..4`, `*2..`, `*..4`, `*3` = exactly 3).
pub type LengthRange = Option<(Option<u32>, Option<u32>)>;

/// A relationship pattern `-[var:LABEL*m..n {k: v}]->`.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct RelPattern {
    pub var: Option<String>,
    pub label: Option<String>,
    pub props: Vec<(String, CLit)>,
    pub range: LengthRange,
}

/// One path part: a start node plus a chain of (relationship, node).
#[derive(Clone, PartialEq, Debug)]
pub struct PathPattern {
    pub start: NodePattern,
    pub segments: Vec<(RelPattern, NodePattern)>,
}

/// Comparison operators (Cypher spelling of ≠ is `<>`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum COp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// WHERE expression tree.
#[derive(Clone, PartialEq, Debug)]
pub enum CExpr {
    /// `a.x op lit` or `a.x op b.y`
    Cmp {
        left: PropRef,
        op: COp,
        right: CmpRhs,
    },
    /// `a.x CONTAINS 'lit'` / `STARTS WITH` / `ENDS WITH`
    StrPred {
        left: PropRef,
        kind: StrPredKind,
        needle: String,
    },
    /// `a.x IN [lit, ...]`
    InList {
        left: PropRef,
        list: Vec<CLit>,
    },
    And(Box<CExpr>, Box<CExpr>),
    Or(Box<CExpr>, Box<CExpr>),
    Not(Box<CExpr>),
}

#[derive(Clone, PartialEq, Debug)]
pub enum CmpRhs {
    Lit(CLit),
    Prop(PropRef),
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StrPredKind {
    Contains,
    StartsWith,
    EndsWith,
}

impl CExpr {
    /// Splits top-level AND conjuncts.
    pub fn conjuncts(self) -> Vec<CExpr> {
        match self {
            CExpr::And(a, b) => {
                let mut v = a.conjuncts();
                v.extend(b.conjuncts());
                v
            }
            e => vec![e],
        }
    }

    /// Variables referenced anywhere in the expression.
    pub fn vars(&self) -> Vec<&str> {
        fn go<'a>(e: &'a CExpr, out: &mut Vec<&'a str>) {
            match e {
                CExpr::Cmp { left, right, .. } => {
                    out.push(&left.var);
                    if let CmpRhs::Prop(p) = right {
                        out.push(&p.var);
                    }
                }
                CExpr::StrPred { left, .. } | CExpr::InList { left, .. } => out.push(&left.var),
                CExpr::And(a, b) | CExpr::Or(a, b) => {
                    go(a, out);
                    go(b, out);
                }
                CExpr::Not(i) => go(i, out),
            }
        }
        let mut v = Vec::new();
        go(self, &mut v);
        v.sort();
        v.dedup();
        v
    }
}

/// `RETURN` item: `var.prop`.
#[derive(Clone, PartialEq, Debug)]
pub struct ReturnItem {
    pub prop: PropRef,
}

/// A parsed query.
#[derive(Clone, PartialEq, Debug)]
pub struct CypherQuery {
    pub paths: Vec<PathPattern>,
    pub where_clause: Option<CExpr>,
    pub distinct: bool,
    pub return_items: Vec<ReturnItem>,
    pub limit: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjuncts_and_vars() {
        let a = CExpr::Cmp {
            left: PropRef { var: "e1".into(), prop: "starttime".into() },
            op: COp::Lt,
            right: CmpRhs::Prop(PropRef { var: "e2".into(), prop: "starttime".into() }),
        };
        let b = CExpr::StrPred {
            left: PropRef { var: "p".into(), prop: "exename".into() },
            kind: StrPredKind::Contains,
            needle: "tar".into(),
        };
        let e = CExpr::And(Box::new(a), Box::new(b));
        assert_eq!(e.vars(), vec!["e1", "e2", "p"]);
        assert_eq!(e.conjuncts().len(), 2);
    }
}
