//! Cypher execution.
//!
//! Pipeline: for each path pattern (in MATCH order) — anchor the start node
//! (bound variable, indexed property lookup, label scan, or full scan), then
//! extend bindings along each relationship segment (fixed-length via
//! adjacency, variable-length via bounded DFS with edge-distinctness) —
//! applying WHERE conjuncts as soon as all their variables are bound,
//! then project RETURN items, DISTINCT, LIMIT.

use raptor_common::error::{Error, Result};
use raptor_common::hash::FxHashMap;
use raptor_common::intern::{SharedDict, Sym};

use super::ast::*;
use crate::graph::{prop_of, EdgeId, Graph, NodeId, PropValue};

/// Default hop cap for unbounded variable-length patterns (`[*]`, `[*2..]`).
pub const DEFAULT_MAX_HOPS: u32 = 8;

/// A value projected out of a query. Strings stay interned — the engine
/// converts them straight to shared-plane `raptor_storage::Value`s with no
/// materialization; rendering resolves through the graph's dictionary.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum GVal {
    Int(i64),
    Str(Sym),
    Null,
}

impl GVal {
    pub fn render(&self, dict: &SharedDict) -> String {
        match self {
            GVal::Int(i) => i.to_string(),
            GVal::Str(s) => dict.resolve(*s).to_string(),
            GVal::Null => String::new(),
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            GVal::Int(i) => Some(*i),
            _ => None,
        }
    }
}

/// Execution counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GraphQueryStats {
    pub nodes_scanned: usize,
    pub edges_traversed: usize,
    pub bindings_built: usize,
}

/// Query result: projected columns and rows.
#[derive(Clone, Debug)]
pub struct CypherResult {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<GVal>>,
    pub stats: GraphQueryStats,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum BindVal {
    Unbound,
    Node(NodeId),
    Edge(EdgeId),
}

struct VarTable {
    slots: FxHashMap<String, usize>,
    count: usize,
}

impl VarTable {
    fn slot(&mut self, name: &str) -> usize {
        if let Some(&s) = self.slots.get(name) {
            return s;
        }
        let s = self.count;
        self.slots.insert(name.to_string(), s);
        self.count += 1;
        s
    }

    fn lookup(&self, name: &str) -> Result<usize> {
        self.slots
            .get(name)
            .copied()
            .ok_or_else(|| Error::semantic(format!("unknown variable `{name}`")))
    }
}

fn lit_to_prop(g: &Graph, lit: &CLit) -> Option<PropValue> {
    match lit {
        CLit::Int(i) => Some(PropValue::Int(*i)),
        CLit::Str(s) => g.dict().get(s).map(PropValue::Str),
        CLit::Sym(s) => Some(PropValue::Str(*s)),
    }
}

/// Does `node` satisfy the pattern's label and property map?
fn node_matches(g: &Graph, id: NodeId, pat: &NodePattern) -> bool {
    let n = g.node(id);
    if let Some(label) = &pat.label {
        match g.dict().get(label) {
            Some(sym) if n.label == sym => {}
            _ => return false,
        }
    }
    props_match(g, &n.props, &pat.props)
}

fn edge_matches(g: &Graph, id: EdgeId, pat: &RelPattern) -> bool {
    let e = g.edge(id);
    if let Some(label) = &pat.label {
        match g.dict().get(label) {
            Some(sym) if e.label == sym => {}
            _ => return false,
        }
    }
    props_match(g, &e.props, &pat.props)
}

fn props_match(
    g: &Graph,
    actual: &[(raptor_common::Sym, PropValue)],
    wanted: &[(String, CLit)],
) -> bool {
    wanted.iter().all(|(k, lit)| {
        let Some(key) = g.dict().get(k) else { return false };
        let Some(want) = lit_to_prop(g, lit) else { return false };
        prop_of(actual, key) == Some(want)
    })
}

/// Candidate anchors for a path start: tightest available access path.
fn anchor_candidates(
    g: &Graph,
    pat: &NodePattern,
    extra: &[&CExpr],
    stats: &mut GraphQueryStats,
) -> Vec<NodeId> {
    // 1. Indexed property-map equality.
    if let Some(label) = &pat.label {
        for (k, lit) in &pat.props {
            if let Some(v) = lit_to_prop(g, lit) {
                if let Some(ids) = g.indexed_nodes(label, k, v) {
                    stats.nodes_scanned += ids.len();
                    return ids.to_vec();
                }
            }
        }
        // 2. Indexed WHERE conjuncts on this variable (= / CONTAINS /
        //    STARTS WITH / ENDS WITH against the distinct-value dictionary).
        for e in extra {
            match e {
                CExpr::Cmp { left, op: COp::Eq, right: CmpRhs::Lit(lit) } => {
                    if let Some(v) = lit_to_prop(g, lit) {
                        if let Some(ids) = g.indexed_nodes(label, &left.prop, v) {
                            stats.nodes_scanned += ids.len();
                            return ids.to_vec();
                        }
                    } else {
                        // Literal string unseen in the graph: no node matches.
                        if g.indexed_values(label, &left.prop).is_some() {
                            return Vec::new();
                        }
                    }
                }
                CExpr::InList { left, list } => {
                    // `p.id IN [..]` — the scheduler's propagated filters.
                    let mut out = Vec::new();
                    let mut indexed = true;
                    for lit in list {
                        if let Some(v) = lit_to_prop(g, lit) {
                            match g.indexed_nodes(label, &left.prop, v) {
                                Some(ids) => out.extend_from_slice(ids),
                                None => {
                                    indexed = false;
                                    break;
                                }
                            }
                        }
                    }
                    if indexed {
                        stats.nodes_scanned += out.len();
                        return out;
                    }
                }
                CExpr::StrPred { left, kind, needle } => {
                    if let Some(values) = g.indexed_values(label, &left.prop) {
                        let mut out = Vec::new();
                        for (sym, ids) in values {
                            let s = g.dict().resolve(sym);
                            let hit = match kind {
                                StrPredKind::Contains => s.contains(needle.as_str()),
                                StrPredKind::StartsWith => s.starts_with(needle.as_str()),
                                StrPredKind::EndsWith => s.ends_with(needle.as_str()),
                            };
                            if hit {
                                out.extend_from_slice(ids);
                            }
                        }
                        stats.nodes_scanned += out.len();
                        return out;
                    }
                }
                _ => {}
            }
        }
        // 3. Label scan.
        let ids = g.nodes_with_label(label);
        stats.nodes_scanned += ids.len();
        return ids.to_vec();
    }
    // 4. Full scan.
    stats.nodes_scanned += g.node_count();
    g.node_ids().collect()
}

fn prop_value_of(g: &Graph, bind: BindVal, prop: &str) -> Option<PropValue> {
    match bind {
        BindVal::Node(n) => g.node_prop(n, prop),
        BindVal::Edge(e) => g.edge_prop(e, prop),
        BindVal::Unbound => None,
    }
}

fn eval_where(g: &Graph, e: &CExpr, binding: &[BindVal], vars: &VarTable) -> bool {
    match e {
        CExpr::Cmp { left, op, right } => {
            let Ok(ls) = vars.lookup(&left.var) else { return false };
            let Some(lv) = prop_value_of(g, binding[ls], &left.prop) else { return false };
            let rv = match right {
                CmpRhs::Lit(lit) => match lit {
                    CLit::Int(i) => PropValue::Int(*i),
                    CLit::Str(s) => match g.dict().get(s) {
                        Some(sym) => PropValue::Str(sym),
                        // Unseen string: only `<>` holds, and only for strings.
                        None => return matches!(op, COp::Ne) && matches!(lv, PropValue::Str(_)),
                    },
                    CLit::Sym(s) => PropValue::Str(*s),
                },
                CmpRhs::Prop(p) => {
                    let Ok(rs) = vars.lookup(&p.var) else { return false };
                    let Some(v) = prop_value_of(g, binding[rs], &p.prop) else { return false };
                    v
                }
            };
            use std::cmp::Ordering::*;
            let ord = match (lv, rv) {
                (PropValue::Int(a), PropValue::Int(b)) => a.cmp(&b),
                (PropValue::Str(a), PropValue::Str(b)) => {
                    if a == b {
                        Equal
                    } else {
                        g.dict().resolve(a).cmp(g.dict().resolve(b))
                    }
                }
                _ => return false,
            };
            match op {
                COp::Eq => ord == Equal,
                COp::Ne => ord != Equal,
                COp::Lt => ord == Less,
                COp::Le => ord != Greater,
                COp::Gt => ord == Greater,
                COp::Ge => ord != Less,
            }
        }
        CExpr::StrPred { left, kind, needle } => {
            let Ok(ls) = vars.lookup(&left.var) else { return false };
            let Some(PropValue::Str(sym)) = prop_value_of(g, binding[ls], &left.prop) else {
                return false;
            };
            let s = g.dict().resolve(sym);
            match kind {
                StrPredKind::Contains => s.contains(needle.as_str()),
                StrPredKind::StartsWith => s.starts_with(needle.as_str()),
                StrPredKind::EndsWith => s.ends_with(needle.as_str()),
            }
        }
        CExpr::InList { left, list } => {
            let Ok(ls) = vars.lookup(&left.var) else { return false };
            let Some(v) = prop_value_of(g, binding[ls], &left.prop) else { return false };
            list.iter().any(|lit| lit_to_prop(g, lit) == Some(v))
        }
        CExpr::And(a, b) => eval_where(g, a, binding, vars) && eval_where(g, b, binding, vars),
        CExpr::Or(a, b) => eval_where(g, a, binding, vars) || eval_where(g, b, binding, vars),
        CExpr::Not(inner) => !eval_where(g, inner, binding, vars),
    }
}

/// Evaluates a WHERE-style expression against a single bound node. This is
/// the frontier plane's hook for reusing the executor's predicate semantics
/// (string comparisons resolve through the dictionary, unseen literals only
/// satisfy `<>`, …) outside a full MATCH: `var` is the sole variable the
/// expression may reference.
pub(crate) fn eval_single_node(g: &Graph, e: &CExpr, var: &str, node: NodeId) -> bool {
    let mut vars = VarTable { slots: FxHashMap::default(), count: 0 };
    let slot = vars.slot(var);
    let mut binding = vec![BindVal::Unbound; vars.count];
    binding[slot] = BindVal::Node(node);
    eval_where(g, e, &binding, &vars)
}

/// Edge flavour of [`eval_single_node`].
pub(crate) fn eval_single_edge(g: &Graph, e: &CExpr, var: &str, edge: EdgeId) -> bool {
    let mut vars = VarTable { slots: FxHashMap::default(), count: 0 };
    let slot = vars.slot(var);
    let mut binding = vec![BindVal::Unbound; vars.count];
    binding[slot] = BindVal::Edge(edge);
    eval_where(g, e, &binding, &vars)
}

/// Runs a parsed query.
pub fn execute(g: &Graph, q: &CypherQuery, max_hops: u32) -> Result<CypherResult> {
    let mut stats = GraphQueryStats::default();
    let mut vars = VarTable { slots: FxHashMap::default(), count: 0 };

    // Pre-assign slots for all named pattern variables, in appearance order.
    for path in &q.paths {
        if let Some(v) = &path.start.var {
            vars.slot(v);
        }
        for (rel, node) in &path.segments {
            if let Some(v) = &rel.var {
                if rel.range.is_some() {
                    return Err(Error::semantic(format!(
                        "variable `{v}` binds a variable-length relationship; \
                         bind the final hop separately instead"
                    )));
                }
                vars.slot(v);
            }
            if let Some(v) = &node.var {
                vars.slot(v);
            }
        }
    }
    let nslots = vars.count;

    // Split WHERE into conjuncts; each applies once all its vars are bound.
    let conjuncts: Vec<CExpr> = q.where_clause.clone().map(|w| w.conjuncts()).unwrap_or_default();
    for c in &conjuncts {
        for v in c.vars() {
            vars.lookup(v)?; // fail fast on unknown vars
        }
    }
    let mut applied = vec![false; conjuncts.len()];
    let mut bound_names: Vec<String> = Vec::new();

    let mut bindings: Vec<Vec<BindVal>> = vec![vec![BindVal::Unbound; nslots]];

    for path in &q.paths {
        // --- anchor ---
        let start_slot = path.start.var.as_ref().map(|v| vars.slots[v.as_str()]);
        let already_bound = start_slot
            .map(|s| bindings.first().is_some_and(|b| b[s] != BindVal::Unbound))
            .unwrap_or(false);
        if already_bound {
            // Filter existing bindings by the start pattern.
            let slot = start_slot.unwrap();
            bindings.retain(|b| match b[slot] {
                BindVal::Node(n) => node_matches(g, n, &path.start),
                _ => false,
            });
        } else {
            // Anchor with WHERE conjuncts that reference only this new var.
            let var_name = path.start.var.clone();
            let extra: Vec<&CExpr> = conjuncts
                .iter()
                .filter(|c| {
                    if let Some(v) = &var_name {
                        let cv = c.vars();
                        cv.len() == 1 && cv[0] == v
                    } else {
                        false
                    }
                })
                .collect();
            let mut candidates = anchor_candidates(g, &path.start, &extra, &mut stats);
            candidates.retain(|&n| node_matches(g, n, &path.start));
            let mut next = Vec::with_capacity(bindings.len() * candidates.len().max(1));
            for b in &bindings {
                for &n in &candidates {
                    let mut nb = b.clone();
                    if let Some(s) = start_slot {
                        nb[s] = BindVal::Node(n);
                    } else {
                        // Anonymous start: tracked positionally below.
                    }
                    // Anonymous starts carry the node through `cursor`.
                    next.push((nb, n));
                }
            }
            // Re-pack: store cursor separately during extension.
            bindings = Vec::with_capacity(next.len());
            let mut cursors = Vec::with_capacity(next.len());
            for (nb, n) in next {
                bindings.push(nb);
                cursors.push(n);
            }
            extend_path(g, path, &mut bindings, cursors, &vars, max_hops, &mut stats)?;
            if let Some(v) = &path.start.var {
                if !bound_names.contains(v) {
                    bound_names.push(v.clone());
                }
            }
            for (rel, node) in &path.segments {
                for v in [&rel.var, &node.var].into_iter().flatten() {
                    if !bound_names.contains(v) {
                        bound_names.push(v.clone());
                    }
                }
            }
            apply_ready_conjuncts(g, &conjuncts, &mut applied, &bound_names, &mut bindings, &vars);
            stats.bindings_built += bindings.len();
            continue;
        }
        // Start var was already bound: cursors come from bindings.
        let slot = start_slot.expect("bound start must be named");
        let cursors: Vec<NodeId> = bindings
            .iter()
            .map(|b| match b[slot] {
                BindVal::Node(n) => n,
                _ => unreachable!("retained above"),
            })
            .collect();
        extend_path(g, path, &mut bindings, cursors, &vars, max_hops, &mut stats)?;
        for (rel, node) in &path.segments {
            for v in [&rel.var, &node.var].into_iter().flatten() {
                if !bound_names.contains(v) {
                    bound_names.push(v.clone());
                }
            }
        }
        apply_ready_conjuncts(g, &conjuncts, &mut applied, &bound_names, &mut bindings, &vars);
        stats.bindings_built += bindings.len();
    }

    // Any conjunct not yet applied references an unbound variable.
    if let Some(i) = applied.iter().position(|a| !a) {
        let c = &conjuncts[i];
        return Err(Error::semantic(format!(
            "WHERE references variable(s) {:?} never bound by MATCH",
            c.vars()
        )));
    }

    // --- projection ---
    let mut columns = Vec::new();
    let mut rows: Vec<Vec<GVal>> = Vec::with_capacity(bindings.len());
    for item in &q.return_items {
        columns.push(item.prop.to_string());
        vars.lookup(&item.prop.var)?;
    }
    for b in &bindings {
        let row: Vec<GVal> = q
            .return_items
            .iter()
            .map(|item| {
                let slot = vars.slots[item.prop.var.as_str()];
                match prop_value_of(g, b[slot], &item.prop.prop) {
                    Some(PropValue::Int(i)) => GVal::Int(i),
                    Some(PropValue::Str(s)) => GVal::Str(s),
                    None => GVal::Null,
                }
            })
            .collect();
        rows.push(row);
    }
    if q.distinct {
        let mut seen: raptor_common::FxHashSet<Vec<GVal>> = Default::default();
        rows.retain(|r| seen.insert(r.clone()));
    }
    if let Some(n) = q.limit {
        rows.truncate(n);
    }
    Ok(CypherResult { columns, rows, stats })
}

/// Bindings below which segment extension stays sequential — per-binding
/// work (adjacency walk or bounded DFS) dwarfs a filter row, so the bar for
/// fanning out over anchors is low.
const PAR_MIN_BINDINGS: usize = 16;

/// Extends one binding along one relationship segment, appending every
/// extension to `out_bindings`/`out_cursors` (in the deterministic
/// traversal order) and counting traversed edges into `edges`.
#[allow(clippy::too_many_arguments)]
fn extend_one(
    g: &Graph,
    rel: &RelPattern,
    node: &NodePattern,
    rel_slot: Option<usize>,
    node_slot: Option<usize>,
    max_hops: u32,
    b: &[BindVal],
    cur: NodeId,
    out_bindings: &mut Vec<Vec<BindVal>>,
    out_cursors: &mut Vec<NodeId>,
    edges: &mut usize,
) {
    match rel.range {
        None => {
            for &eid in g.out_edges(cur) {
                *edges += 1;
                if !edge_matches(g, eid, rel) {
                    continue;
                }
                let dst = g.edge(eid).dst;
                if !target_ok(g, b, node_slot, dst, node) {
                    continue;
                }
                let mut nb = b.to_vec();
                if let Some(s) = rel_slot {
                    nb[s] = BindVal::Edge(eid);
                }
                if let Some(s) = node_slot {
                    nb[s] = BindVal::Node(dst);
                }
                out_bindings.push(nb);
                out_cursors.push(dst);
            }
        }
        Some((min, max)) => {
            let min = min.unwrap_or(1);
            let max = max.unwrap_or(max_hops).min(max_hops);
            // Bounded DFS with edge-distinctness along the walk.
            // min = 0 allows the zero-hop match (start node itself),
            // which compiled `~>(1~n)` prefixes rely on.
            let mut stack: Vec<(NodeId, u32, Vec<EdgeId>)> = vec![(cur, 0, Vec::new())];
            while let Some((n, depth, used)) = stack.pop() {
                if depth >= min && (depth > 0 || min == 0) && target_ok(g, b, node_slot, n, node) {
                    let mut nb = b.to_vec();
                    if let Some(s) = node_slot {
                        nb[s] = BindVal::Node(n);
                    }
                    out_bindings.push(nb);
                    out_cursors.push(n);
                }
                if depth == max {
                    continue;
                }
                for &eid in g.out_edges(n) {
                    *edges += 1;
                    if used.contains(&eid) || !edge_matches(g, eid, rel) {
                        continue;
                    }
                    let mut used2 = used.clone();
                    used2.push(eid);
                    stack.push((g.edge(eid).dst, depth + 1, used2));
                }
            }
        }
    }
}

/// Extends `bindings` (with per-binding `cursors` at the current path
/// position) along every segment of `path`.
///
/// The per-binding extension — one adjacency walk or bounded DFS per anchor
/// — fans out over anchor ranges through the graph's pool. Partition
/// outputs (extensions plus edge counters) are absorbed in partition order,
/// so binding order and `edges_traversed` are byte-identical to the
/// sequential traversal at any thread count.
fn extend_path(
    g: &Graph,
    path: &PathPattern,
    bindings: &mut Vec<Vec<BindVal>>,
    mut cursors: Vec<NodeId>,
    vars: &VarTable,
    max_hops: u32,
    stats: &mut GraphQueryStats,
) -> Result<()> {
    for (rel, node) in &path.segments {
        let rel_slot = rel.var.as_ref().map(|v| vars.slots[v.as_str()]);
        let node_slot = node.var.as_ref().map(|v| vars.slots[v.as_str()]);
        let parts = g.pool().run_partitioned(bindings.len(), PAR_MIN_BINDINGS, |range| {
            let mut nb = Vec::new();
            let mut nc = Vec::new();
            let mut edges = 0usize;
            for (b, &cur) in bindings[range.clone()].iter().zip(&cursors[range]) {
                extend_one(
                    g, rel, node, rel_slot, node_slot, max_hops, b, cur, &mut nb, &mut nc,
                    &mut edges,
                );
            }
            (nb, nc, edges)
        });
        let total: usize = parts.iter().map(|(nb, _, _)| nb.len()).sum();
        let mut next_bindings = Vec::with_capacity(total);
        let mut next_cursors = Vec::with_capacity(total);
        for (nb, nc, edges) in parts {
            stats.edges_traversed += edges;
            next_bindings.extend(nb);
            next_cursors.extend(nc);
        }
        *bindings = next_bindings;
        cursors = next_cursors;
    }
    Ok(())
}

fn target_ok(
    g: &Graph,
    binding: &[BindVal],
    node_slot: Option<usize>,
    dst: NodeId,
    pat: &NodePattern,
) -> bool {
    if !node_matches(g, dst, pat) {
        return false;
    }
    // If the target variable is already bound, it must be the same node.
    if let Some(s) = node_slot {
        if let BindVal::Node(existing) = binding[s] {
            return existing == dst;
        }
        if let BindVal::Edge(_) = binding[s] {
            return false;
        }
    }
    true
}

fn apply_ready_conjuncts(
    g: &Graph,
    conjuncts: &[CExpr],
    applied: &mut [bool],
    bound: &[String],
    bindings: &mut Vec<Vec<BindVal>>,
    vars: &VarTable,
) {
    for (i, c) in conjuncts.iter().enumerate() {
        if applied[i] {
            continue;
        }
        if c.vars().iter().all(|v| bound.iter().any(|b| b == v)) {
            bindings.retain(|b| eval_where(g, c, b, vars));
            applied[i] = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cypher::parse_cypher;
    use crate::graph::PropIns;

    /// The Figure 2 chain: tar→passwd, tar→upload.tar, bzip2→upload.tar,
    /// bzip2→upload.tar.bz2, gpg→..., curl→ip.
    fn fig2_graph() -> Graph {
        let mut g = Graph::new();
        let mk_proc = |g: &mut Graph, exe: &str, pid: i64| {
            g.add_node(
                "Process",
                &[
                    ("exename", PropIns::Str(exe)),
                    ("pid", PropIns::Int(pid)),
                    ("id", PropIns::Int(pid)),
                ],
            )
        };
        let mk_file = |g: &mut Graph, name: &str, id: i64| {
            g.add_node("File", &[("name", PropIns::Str(name)), ("id", PropIns::Int(id))])
        };
        let tar = mk_proc(&mut g, "/bin/tar", 100);
        let bzip = mk_proc(&mut g, "/bin/bzip2", 101);
        let gpg = mk_proc(&mut g, "/usr/bin/gpg", 102);
        let curl = mk_proc(&mut g, "/usr/bin/curl", 103);
        let passwd = mk_file(&mut g, "/etc/passwd", 200);
        let uptar = mk_file(&mut g, "/tmp/upload.tar", 201);
        let upbz2 = mk_file(&mut g, "/tmp/upload.tar.bz2", 202);
        let upload = mk_file(&mut g, "/tmp/upload", 203);
        let ip = g.add_node(
            "NetConn",
            &[("dstip", PropIns::Str("192.168.29.128")), ("id", PropIns::Int(300))],
        );
        let mut t = 0;
        let mut ev = |g: &mut Graph, s, d, op: &str| {
            t += 100;
            g.add_edge(
                s,
                d,
                "EVENT",
                &[("optype", PropIns::Str(op)), ("starttime", PropIns::Int(t))],
            )
            .unwrap();
        };
        ev(&mut g, tar, passwd, "read");
        ev(&mut g, tar, uptar, "write");
        ev(&mut g, bzip, uptar, "read");
        ev(&mut g, bzip, upbz2, "write");
        ev(&mut g, gpg, upbz2, "read");
        ev(&mut g, gpg, upload, "write");
        ev(&mut g, curl, upload, "read");
        ev(&mut g, curl, ip, "connect");
        g.create_node_index("Process", "exename");
        g.create_node_index("File", "name");
        g
    }

    fn run(g: &Graph, q: &str) -> Vec<Vec<String>> {
        let parsed = parse_cypher(q).unwrap();
        let r = execute(g, &parsed, DEFAULT_MAX_HOPS).unwrap();
        r.rows.iter().map(|row| row.iter().map(|v| v.render(g.dict())).collect()).collect()
    }

    #[test]
    fn single_pattern_with_contains() {
        let g = fig2_graph();
        let rows = run(
            &g,
            "MATCH (p:Process)-[e:EVENT {optype: 'read'}]->(f:File) \
             WHERE p.exename CONTAINS '/bin/tar' AND f.name CONTAINS '/etc/passwd' \
             RETURN DISTINCT p.exename, f.name",
        );
        assert_eq!(rows, vec![vec!["/bin/tar".to_string(), "/etc/passwd".to_string()]]);
    }

    #[test]
    fn shared_variable_joins_patterns() {
        let g = fig2_graph();
        // bzip2 reads upload.tar which tar wrote.
        let rows = run(
            &g,
            "MATCH (p1:Process)-[:EVENT {optype: 'write'}]->(f:File), \
                   (p2:Process)-[:EVENT {optype: 'read'}]->(f) \
             WHERE p1.exename CONTAINS 'tar' AND p2.exename CONTAINS 'bzip2' \
             RETURN p1.exename, p2.exename, f.name",
        );
        assert_eq!(
            rows,
            vec![vec![
                "/bin/tar".to_string(),
                "/bin/bzip2".to_string(),
                "/tmp/upload.tar".to_string()
            ]]
        );
    }

    #[test]
    fn temporal_where_between_edges() {
        let g = fig2_graph();
        let rows = run(
            &g,
            "MATCH (p:Process)-[e1:EVENT {optype:'read'}]->(f1:File), \
                   (p)-[e2:EVENT {optype:'write'}]->(f2:File) \
             WHERE e1.starttime < e2.starttime \
             RETURN p.exename, f1.name, f2.name",
        );
        // tar, bzip2, gpg each read-then-write.
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn var_length_path_reaches_transitively() {
        let g = fig2_graph();
        // passwd flows to upload in 6 hops through alternating file/proc?
        // Our edges all point proc→file, so walk from a file needs in-edges;
        // instead check proc→file 1-hop vs 2-hop caps.
        let rows = run(
            &g,
            "MATCH (p:Process)-[:EVENT*1..2]->(f:File) \
             WHERE p.exename CONTAINS 'tar' RETURN DISTINCT f.name",
        );
        // From /bin/tar: passwd and upload.tar at depth 1; no deeper edges
        // from files (graph is bipartite proc→{file,net}).
        let mut got: Vec<String> = rows.into_iter().map(|mut r| r.remove(0)).collect();
        got.sort();
        assert_eq!(got, vec!["/etc/passwd".to_string(), "/tmp/upload.tar".to_string()]);
    }

    #[test]
    fn var_length_respects_min() {
        let mut g = Graph::new();
        let a = g.add_node("N", &[("name", PropIns::Str("a"))]);
        let b = g.add_node("N", &[("name", PropIns::Str("b"))]);
        let c = g.add_node("N", &[("name", PropIns::Str("c"))]);
        let d = g.add_node("N", &[("name", PropIns::Str("d"))]);
        g.add_edge(a, b, "E", &[]).unwrap();
        g.add_edge(b, c, "E", &[]).unwrap();
        g.add_edge(c, d, "E", &[]).unwrap();
        let rows = run(&g, "MATCH (x {name:'a'})-[:E*2..3]->(y) RETURN y.name");
        let mut got: Vec<String> = rows.into_iter().map(|mut r| r.remove(0)).collect();
        got.sort();
        assert_eq!(got, vec!["c".to_string(), "d".to_string()]);
    }

    #[test]
    fn var_length_cycle_terminates() {
        let mut g = Graph::new();
        let a = g.add_node("N", &[("name", PropIns::Str("a"))]);
        let b = g.add_node("N", &[("name", PropIns::Str("b"))]);
        g.add_edge(a, b, "E", &[]).unwrap();
        g.add_edge(b, a, "E", &[]).unwrap();
        // Unbounded: must not loop forever; edge-distinctness caps at 2 hops.
        let rows = run(&g, "MATCH (x {name:'a'})-[:E*]->(y) RETURN y.name");
        assert_eq!(rows.len(), 2); // b (1 hop), a (2 hops)
    }

    #[test]
    fn connect_pattern_to_netconn() {
        let g = fig2_graph();
        let rows = run(
            &g,
            "MATCH (p:Process)-[:EVENT {optype:'connect'}]->(i:NetConn) \
             WHERE i.dstip = '192.168.29.128' RETURN p.exename",
        );
        assert_eq!(rows, vec![vec!["/usr/bin/curl".to_string()]]);
    }

    #[test]
    fn unknown_literal_string_matches_nothing() {
        let g = fig2_graph();
        let rows = run(
            &g,
            "MATCH (p:Process)-[:EVENT]->(f:File) WHERE p.exename = '/bin/absent' RETURN f.name",
        );
        assert!(rows.is_empty());
    }

    #[test]
    fn where_on_unbound_var_is_error() {
        let g = fig2_graph();
        let q = parse_cypher("MATCH (p:Process) WHERE z.name = 'x' RETURN p.exename").unwrap();
        assert!(execute(&g, &q, DEFAULT_MAX_HOPS).is_err());
    }

    #[test]
    fn varlen_rel_binding_rejected() {
        let g = fig2_graph();
        let q =
            parse_cypher("MATCH (p:Process)-[e:EVENT*1..2]->(f:File) RETURN p.exename").unwrap();
        let err = execute(&g, &q, DEFAULT_MAX_HOPS).unwrap_err();
        assert!(err.to_string().contains("variable-length"));
    }

    #[test]
    fn limit_and_distinct() {
        let g = fig2_graph();
        let rows =
            run(&g, "MATCH (p:Process)-[:EVENT]->(f:File) RETURN DISTINCT p.exename LIMIT 2");
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn in_list_where() {
        let g = fig2_graph();
        let rows = run(
            &g,
            "MATCH (p:Process)-[:EVENT]->(f:File) \
             WHERE p.exename IN ['/bin/tar', '/usr/bin/gpg'] RETURN DISTINCT p.exename",
        );
        assert_eq!(rows.len(), 2);
    }
}
