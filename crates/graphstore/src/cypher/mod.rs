//! The Cypher subset.
//!
//! Compiled TBQL path patterns only need a focused slice of Cypher:
//!
//! ```cypher
//! MATCH (p1:Process)-[evt1:EVENT {optype: 'read'}]->(f1:File),
//!       (p2:Process)-[:EVENT*1..3]->(m)-[evt2:EVENT {optype: 'write'}]->(f2:File)
//! WHERE p1.exename CONTAINS '/bin/tar' AND f1.name CONTAINS '/etc/passwd'
//!   AND evt1.starttime < evt2.starttime
//! RETURN DISTINCT p1.exename, f1.name LIMIT 10
//! ```
//!
//! Supported: node patterns `(var:Label {k: lit, ...})`, directed
//! relationships `-[var:LABEL(*m..n)? {k: lit}]->`, comma-separated pattern
//! parts sharing variables, `WHERE` with `=`, `<>`, `<`, `<=`, `>`, `>=`,
//! `CONTAINS`, `STARTS WITH`, `ENDS WITH`, `IN [..]`, `AND`/`OR`/`NOT`,
//! `RETURN [DISTINCT] var.prop[, ...]`, `LIMIT n`.

pub mod ast;
pub mod exec;
pub mod lexer;
pub mod parser;

pub use ast::CypherQuery;
pub use parser::parse_cypher;
