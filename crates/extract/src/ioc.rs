//! IOC recognition.
//!
//! Hand-written scanners (extending the coverage of the open-source
//! ioc-parser the paper started from — e.g. distinguishing Linux and Windows
//! file paths) recognize the IOC types below, with byte-exact spans so the
//! protection step can splice them out. Common defangings are normalized:
//! `hxxp` → `http`, `[.]`/`(.)`/`[dot]` → `.`.

use serde::{Deserialize, Serialize};

/// IOC types recognized by the scanners.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum IocType {
    /// Absolute Unix path (`/etc/passwd`).
    FilePath,
    /// Windows path (`C:\Users\x\evil.exe` or UNC).
    WinFilePath,
    /// Bare file name with a known extension (`MsgApp-instr.apk`).
    FileName,
    /// IPv4, optionally with a CIDR suffix.
    Ip,
    Domain,
    Url,
    Email,
    /// MD5 / SHA-1 / SHA-256 hex digest.
    Hash,
    Cve,
    /// Windows registry key.
    Registry,
}

impl IocType {
    pub fn name(self) -> &'static str {
        match self {
            IocType::FilePath => "filepath",
            IocType::WinFilePath => "winfilepath",
            IocType::FileName => "filename",
            IocType::Ip => "ip",
            IocType::Domain => "domain",
            IocType::Url => "url",
            IocType::Email => "email",
            IocType::Hash => "hash",
            IocType::Cve => "cve",
            IocType::Registry => "registry",
        }
    }

    /// Is this IOC type file-like (usable as a file/process entity)?
    pub fn is_file_like(self) -> bool {
        matches!(self, IocType::FilePath | IocType::WinFilePath | IocType::FileName)
    }

    /// Is this IOC type network-like (usable as a network entity)?
    pub fn is_network_like(self) -> bool {
        matches!(self, IocType::Ip | IocType::Domain | IocType::Url)
    }
}

/// One recognized IOC.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IocMatch {
    /// Byte span in the source text.
    pub start: usize,
    pub end: usize,
    /// Normalized (refanged) text.
    pub text: String,
    pub ioc_type: IocType,
}

const FILE_EXTENSIONS: &[&str] = &[
    "7z", "apk", "bat", "bin", "bz2", "cfg", "conf", "dat", "deb", "dll", "doc", "docx", "elf",
    "exe", "gz", "htm", "html", "img", "iso", "jar", "jpg", "js", "json", "log", "msi", "o", "pdf",
    "php", "png", "ps1", "py", "rar", "rpm", "sh", "so", "sys", "tar", "tgz", "tmp", "txt", "vbs",
    "xls", "xlsx", "xml", "yaml", "yml", "zip",
];

const TLDS: &[&str] = &[
    "biz", "cc", "club", "cn", "co", "com", "de", "edu", "fr", "gov", "info", "io", "ir", "jp",
    "kr", "me", "mil", "net", "nl", "onion", "online", "org", "ru", "site", "su", "top", "tv",
    "uk", "us", "ws", "xyz",
];

fn is_ioc_char(c: u8) -> bool {
    c.is_ascii_alphanumeric()
        || matches!(
            c,
            b'.' | b'_'
                | b'-'
                | b'/'
                | b'\\'
                | b':'
                | b'@'
                | b'%'
                | b'~'
                | b'+'
                | b'='
                | b'&'
                | b'?'
                | b'#'
                | b'['
                | b']'
                | b'('
                | b')'
        )
}

/// Refangs a candidate: `[.]`, `(.)`, `[dot]`, `(dot)` → `.`; `hxxp` → `http`.
fn refang(s: &str) -> String {
    let mut out = s.replace("[.]", ".").replace("(.)", ".");
    out = out.replace("[dot]", ".").replace("(dot)", ".");
    if out.to_ascii_lowercase().starts_with("hxxp") {
        let rest = &out[4..];
        let scheme = if out.starts_with('H') { "HTTP" } else { "http" };
        out = format!("{scheme}{rest}");
    }
    out
}

fn trim_trailing(s: &str) -> &str {
    s.trim_end_matches(['.', ',', ';', ':', ')', ']', '?', '!', '\'', '"'])
}

/// Scans `text` for IOCs, returning non-overlapping matches in text order.
pub fn scan_iocs(text: &str) -> Vec<IocMatch> {
    let bytes = text.as_bytes();
    let mut out: Vec<IocMatch> = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        // Candidate spans start at an IOC char preceded by a boundary.
        if !is_ioc_char(bytes[i]) || (i > 0 && is_ioc_char(bytes[i - 1])) {
            i += 1;
            continue;
        }
        // Maximal candidate run.
        let mut j = i;
        while j < bytes.len() && is_ioc_char(bytes[j]) {
            j += 1;
        }
        let raw = &text[i..j];
        let trimmed = trim_trailing(raw);
        if trimmed.is_empty() {
            i = j;
            continue;
        }
        let refanged = refang(trimmed);
        if let Some((ty, norm)) = classify(&refanged) {
            out.push(IocMatch { start: i, end: i + trimmed.len(), text: norm, ioc_type: ty });
        }
        i = j;
    }
    out
}

/// Classifies one boundary-trimmed, refanged candidate.
fn classify(s: &str) -> Option<(IocType, String)> {
    if s.len() < 2 {
        return None;
    }
    if let Some(v) = try_url(s) {
        return Some((IocType::Url, v));
    }
    if let Some(v) = try_email(s) {
        return Some((IocType::Email, v));
    }
    if let Some(v) = try_registry(s) {
        return Some((IocType::Registry, v));
    }
    if let Some(v) = try_cve(s) {
        return Some((IocType::Cve, v));
    }
    if let Some(v) = try_ip(s) {
        return Some((IocType::Ip, v));
    }
    if let Some(v) = try_hash(s) {
        return Some((IocType::Hash, v));
    }
    if let Some(v) = try_win_path(s) {
        return Some((IocType::WinFilePath, v));
    }
    if let Some(v) = try_unix_path(s) {
        return Some((IocType::FilePath, v));
    }
    if let Some((ty, v)) = try_dotted_name(s) {
        return Some((ty, v));
    }
    None
}

fn try_url(s: &str) -> Option<String> {
    let lower = s.to_ascii_lowercase();
    for scheme in ["http://", "https://", "ftp://"] {
        if lower.starts_with(scheme) && s.len() > scheme.len() + 2 {
            return Some(s.to_string());
        }
    }
    None
}

fn try_email(s: &str) -> Option<String> {
    let at = s.find('@')?;
    let (local, domain) = (&s[..at], &s[at + 1..]);
    if local.is_empty() || domain.is_empty() {
        return None;
    }
    let local_ok = local
        .bytes()
        .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'%' | b'+' | b'-'));
    if !local_ok || !domain.contains('.') {
        return None;
    }
    let domain_ok = domain
        .split('.')
        .all(|l| !l.is_empty() && l.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-'));
    if domain_ok {
        Some(s.to_string())
    } else {
        None
    }
}

fn try_registry(s: &str) -> Option<String> {
    let upper = s.to_ascii_uppercase();
    for prefix in ["HKEY_", "HKLM\\", "HKCU\\", "HKCR\\", "HKU\\"] {
        if upper.starts_with(prefix) && s.contains('\\') {
            return Some(s.to_string());
        }
    }
    None
}

fn try_cve(s: &str) -> Option<String> {
    let upper = s.to_ascii_uppercase();
    let rest = upper.strip_prefix("CVE-")?;
    let (year, num) = rest.split_once('-')?;
    if year.len() == 4
        && year.bytes().all(|b| b.is_ascii_digit())
        && (1..=7).contains(&num.len())
        && num.bytes().all(|b| b.is_ascii_digit())
    {
        Some(upper)
    } else {
        None
    }
}

fn try_ip(s: &str) -> Option<String> {
    let (addr, cidr) = match s.split_once('/') {
        Some((a, c)) => (a, Some(c)),
        None => (s, None),
    };
    let mut octets = 0;
    for part in addr.split('.') {
        let n: u32 = part.parse().ok()?;
        if n > 255 || part.is_empty() || part.len() > 3 {
            return None;
        }
        octets += 1;
    }
    if octets != 4 {
        return None;
    }
    if let Some(c) = cidr {
        let bits: u32 = c.parse().ok()?;
        if bits > 32 {
            return None;
        }
    }
    Some(s.to_string())
}

fn try_hash(s: &str) -> Option<String> {
    let is_hex = s.bytes().all(|b| b.is_ascii_hexdigit());
    let has_alpha = s.bytes().any(|b| b.is_ascii_alphabetic());
    let has_digit = s.bytes().any(|b| b.is_ascii_digit());
    if is_hex && has_alpha && has_digit && matches!(s.len(), 32 | 40 | 64) {
        Some(s.to_ascii_lowercase())
    } else {
        None
    }
}

fn try_win_path(s: &str) -> Option<String> {
    let bytes = s.as_bytes();
    let drive =
        bytes.len() > 3 && bytes[0].is_ascii_alphabetic() && bytes[1] == b':' && bytes[2] == b'\\';
    let unc = s.starts_with("\\\\") && s.len() > 4;
    if (drive || unc) && !s.ends_with('\\') {
        Some(s.to_string())
    } else {
        None
    }
}

fn try_unix_path(s: &str) -> Option<String> {
    if !s.starts_with('/') || s.len() < 3 || s.contains("//") {
        return None;
    }
    let ok = s
        .bytes()
        .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'/' | b'.' | b'_' | b'-' | b'+' | b'~'));
    let has_alpha = s.bytes().any(|b| b.is_ascii_alphabetic());
    if ok && has_alpha && !s.ends_with('/') {
        Some(s.to_string())
    } else {
        None
    }
}

/// `name.ext` → FileName if `ext` is a known file extension;
/// `host.tld` → Domain if the last label is a known TLD.
fn try_dotted_name(s: &str) -> Option<(IocType, String)> {
    if !s.contains('.') || s.contains('/') || s.contains('\\') || s.contains(':') {
        return None;
    }
    let labels: Vec<&str> = s.split('.').collect();
    if labels.iter().any(|l| l.is_empty()) {
        return None;
    }
    let last = labels.last().unwrap().to_ascii_lowercase();
    let body_ok = |allow_underscore: bool| {
        labels.iter().all(|l| {
            l.bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'-' || (allow_underscore && b == b'_'))
        })
    };
    if FILE_EXTENSIONS.contains(&last.as_str()) && body_ok(true) {
        return Some((IocType::FileName, s.to_string()));
    }
    // Reverse-DNS package names (Android process executables, e.g.
    // `com.android.defcontainer`) — the ClearScope cases need these.
    let first = labels[0].to_ascii_lowercase();
    if matches!(first.as_str(), "com" | "org" | "net" | "io")
        && labels.len() >= 3
        && !TLDS.contains(&last.as_str())
        && body_ok(true)
    {
        return Some((IocType::FileName, s.to_string()));
    }
    if TLDS.contains(&last.as_str()) && labels.len() >= 2 && body_ok(false) {
        // Domains need an alphabetic character somewhere before the TLD.
        if s.bytes().any(|b| b.is_ascii_alphabetic()) {
            return Some((IocType::Domain, s.to_ascii_lowercase()));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(text: &str) -> Vec<(String, IocType)> {
        scan_iocs(text).into_iter().map(|m| (m.text, m.ioc_type)).collect()
    }

    #[test]
    fn figure2_text_iocs() {
        // The exact IOC inventory of the paper's Figure 2 demo text.
        let text = "the attacker used /bin/tar to read user credentials from /etc/passwd. \
                    It wrote the gathered information to a file /tmp/upload.tar. \
                    /bin/bzip2 read from /tmp/upload.tar and wrote to /tmp/upload.tar.bz2. \
                    /usr/bin/gpg then wrote the sensitive information to /tmp/upload. \
                    using /usr/bin/curl to connect to 192.168.29.128.";
        let found = scan(text);
        let texts: Vec<&str> = found.iter().map(|(t, _)| t.as_str()).collect();
        for expected in [
            "/bin/tar",
            "/etc/passwd",
            "/tmp/upload.tar",
            "/bin/bzip2",
            "/tmp/upload.tar.bz2",
            "/usr/bin/gpg",
            "/tmp/upload",
            "/usr/bin/curl",
            "192.168.29.128",
        ] {
            assert!(texts.contains(&expected), "missing {expected}: {texts:?}");
        }
        // The IP classifies as Ip, the paths as FilePath.
        assert!(found.iter().any(|(t, ty)| t == "192.168.29.128" && *ty == IocType::Ip));
        assert!(found.iter().all(|(t, ty)| t != "/etc/passwd" || *ty == IocType::FilePath));
    }

    #[test]
    fn ip_with_cidr_and_bounds() {
        assert_eq!(
            scan("botnet at 192.168.29.128/32 detected"),
            vec![("192.168.29.128/32".to_string(), IocType::Ip)]
        );
        assert!(scan("version 1.2.3.4.5 is fine").is_empty(), "five octets is not an IP");
        assert!(scan("300.1.2.3 invalid").is_empty());
        assert!(scan("1.2.3.4/33 invalid").is_empty());
    }

    #[test]
    fn windows_paths_distinguished_from_linux() {
        let found = scan(r"It dropped C:\Users\victim\evil.exe and /tmp/evil.sh on hosts.");
        assert!(found.contains(&(r"C:\Users\victim\evil.exe".to_string(), IocType::WinFilePath)));
        assert!(found.contains(&("/tmp/evil.sh".to_string(), IocType::FilePath)));
    }

    #[test]
    fn filename_vs_domain() {
        let found = scan("The dropper MsgApp-instr.apk beacons to evil-c2.com today.");
        assert!(found.contains(&("MsgApp-instr.apk".to_string(), IocType::FileName)));
        assert!(found.contains(&("evil-c2.com".to_string(), IocType::Domain)));
        // "upload.tar" is a filename, never a domain ("tar" is an extension).
        assert_eq!(
            scan("see upload.tar here"),
            vec![("upload.tar".to_string(), IocType::FileName)]
        );
    }

    #[test]
    fn urls_and_emails() {
        let found =
            scan("Phishing from admin@evil-c2.com links http://evil-c2.com/payload.bin today");
        assert!(found.contains(&("admin@evil-c2.com".to_string(), IocType::Email)));
        assert!(found.contains(&("http://evil-c2.com/payload.bin".to_string(), IocType::Url)));
    }

    #[test]
    fn defanged_forms_normalized() {
        let found = scan("C2 at hxxp://evil[.]com/x and 192[.]168[.]29[.]128 observed");
        assert!(found.contains(&("http://evil.com/x".to_string(), IocType::Url)));
        assert!(found.contains(&("192.168.29.128".to_string(), IocType::Ip)));
    }

    #[test]
    fn hashes_and_cves() {
        let found = scan("Sample d41d8cd98f00b204e9800998ecf8427e exploits CVE-2014-6271 badly");
        assert!(found.contains(&("d41d8cd98f00b204e9800998ecf8427e".to_string(), IocType::Hash)));
        assert!(found.contains(&("CVE-2014-6271".to_string(), IocType::Cve)));
        // 31 hex chars is not a hash.
        assert!(scan("d41d8cd98f00b204e9800998ecf8427 x").iter().all(|(_, t)| *t != IocType::Hash));
    }

    #[test]
    fn registry_keys() {
        let found = scan(r"persists via HKEY_LOCAL_MACHINE\Software\Run\Evil key");
        assert_eq!(
            found,
            vec![(r"HKEY_LOCAL_MACHINE\Software\Run\Evil".to_string(), IocType::Registry)]
        );
    }

    #[test]
    fn sentence_final_punctuation_trimmed() {
        let found = scan("read from /etc/passwd.");
        assert_eq!(found, vec![("/etc/passwd".to_string(), IocType::FilePath)]);
        let found = scan("connect to 192.168.29.128.");
        assert_eq!(found, vec![("192.168.29.128".to_string(), IocType::Ip)]);
    }

    #[test]
    fn ordinary_prose_yields_nothing() {
        assert!(scan("The attacker attempted lateral movement and/or persistence.").is_empty());
        assert!(scan("This is a test. Only text here, e.g. nothing.").is_empty());
        assert!(scan("").is_empty());
    }

    #[test]
    fn spans_are_byte_accurate() {
        let text = "read /etc/passwd now";
        let m = &scan_iocs(text)[0];
        assert_eq!(&text[m.start..m.end], "/etc/passwd");
    }

    #[test]
    fn type_helpers() {
        assert!(IocType::FilePath.is_file_like());
        assert!(IocType::FileName.is_file_like());
        assert!(!IocType::Ip.is_file_like());
        assert!(IocType::Ip.is_network_like());
        assert!(IocType::Domain.is_network_like());
        assert!(!IocType::Registry.is_network_like());
    }
}
