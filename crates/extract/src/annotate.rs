//! Tree annotation and simplification (Steps 5–6 of Algorithm 1).
//!
//! After dependency parsing, the pipeline annotates the nodes that matter
//! for coreference and relation extraction: IOC nodes (dummy tokens aligned
//! through the replacement record), candidate relation verbs (a curated
//! keyword list, matched on lemmas), and pronouns. Trees with no candidate
//! verb or no IOC/pronoun node are marked inactive — the paper's
//! simplification step, which "does not influence the extraction outcome,
//! but helps speed up the performance".

use raptor_common::hash::{FxHashMap, FxHashSet};
use raptor_nlp::lemma::lemmatize_verb;
use raptor_nlp::{DepTree, PosTag, Token};

use crate::protect::ReplacementRecord;

/// Curated candidate IOC-relation verbs (lemmas). Only verbs on this list
/// can become relation edges — both coverage and precision come from here.
pub const RELATION_VERBS: &[&str] = &[
    "access",
    "beacon",
    "compress",
    "connect",
    "copy",
    "crack",
    "create",
    "decrypt",
    "delete",
    "download",
    "drop",
    "dump",
    "encrypt",
    "execute",
    "exfiltrate",
    "extract",
    "fetch",
    "gather",
    "inject",
    "install",
    "launch",
    "leak",
    "load",
    "modify",
    "open",
    "read",
    "receive",
    "rename",
    "retrieve",
    "run",
    "save",
    "scan",
    "send",
    "spawn",
    "start",
    "steal",
    "store",
    "transfer",
    "upload",
    "visit",
    "write",
];

/// Subject pronouns eligible for IOC coreference. Human pronouns (he/she/
/// they) refer to the attacker, never to a tool or file, and are excluded.
pub const SUBJECT_PRONOUNS: &[&str] = &["it", "this", "itself"];

/// An annotated dependency tree for one sentence.
#[derive(Clone, Debug)]
pub struct AnnTree {
    /// Tokens of the protected sentence (offsets are block-protected-text
    /// byte offsets).
    pub tokens: Vec<Token>,
    pub tree: DepTree,
    /// token index → block-level IOC index.
    pub ioc_of: FxHashMap<usize, usize>,
    /// Token indices whose lemma is a candidate relation verb.
    pub verb_candidates: FxHashSet<usize>,
    /// Lemmas of the verb candidates (parallel map).
    pub verb_lemma: FxHashMap<usize, String>,
    /// Token indices that are subject-capable pronouns.
    pub pronouns: FxHashSet<usize>,
    /// Simplification flag: inactive trees are skipped downstream.
    pub active: bool,
    /// Coreference links: pronoun (or generic-NP head) token → block-level
    /// IOC index. Filled by [`crate::coref`].
    pub coref: FxHashMap<usize, usize>,
}

pub fn is_relation_verb(lemma: &str) -> bool {
    RELATION_VERBS.binary_search(&lemma).is_ok()
}

/// Annotates a parsed sentence. `record` aligns dummy tokens to IOCs; when
/// running *without* IOC protection (`record = None`), tokens align to an
/// IOC only if the token span exactly equals an IOC span in `raw_spans` —
/// which is how shattered IOCs silently drop out of the pipeline.
pub fn annotate(
    tokens: Vec<Token>,
    tree: DepTree,
    record: Option<&ReplacementRecord>,
    raw_spans: &[(usize, usize, usize)],
) -> AnnTree {
    let mut ioc_of = FxHashMap::default();
    let mut verb_candidates = FxHashSet::default();
    let mut verb_lemma = FxHashMap::default();
    let mut pronouns = FxHashSet::default();
    for (i, tok) in tokens.iter().enumerate() {
        match record {
            Some(rec) => {
                if let Some(idx) = rec.ioc_at(tok.start, tok.end) {
                    ioc_of.insert(i, idx);
                    continue;
                }
            }
            None => {
                if let Some(&(_, _, idx)) =
                    raw_spans.iter().find(|&&(s, e, _)| s == tok.start && e == tok.end)
                {
                    ioc_of.insert(i, idx);
                    continue;
                }
            }
        }
        if tok.pos == PosTag::Verb {
            let lemma = lemmatize_verb(&tok.lower);
            if is_relation_verb(&lemma) {
                verb_candidates.insert(i);
                verb_lemma.insert(i, lemma);
            }
        }
        if tok.pos == PosTag::Pron && SUBJECT_PRONOUNS.contains(&tok.lower.as_str()) {
            pronouns.insert(i);
        }
    }
    let active = !verb_candidates.is_empty() && (!ioc_of.is_empty() || !pronouns.is_empty());
    AnnTree {
        tokens,
        tree,
        ioc_of,
        verb_candidates,
        verb_lemma,
        pronouns,
        active,
        coref: FxHashMap::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ioc::scan_iocs;
    use crate::protect::protect;
    use raptor_nlp::{dep, pos, tokenize};

    fn build(text: &str) -> AnnTree {
        let iocs = scan_iocs(text);
        let p = protect(text, &iocs);
        let mut toks = tokenize::tokenize(&p.text, 0);
        pos::tag(&mut toks);
        let tree = dep::parse(&toks);
        annotate(toks, tree, Some(&p.record), &[])
    }

    #[test]
    fn relation_verbs_sorted() {
        let mut v = RELATION_VERBS.to_vec();
        v.sort_unstable();
        assert_eq!(v, RELATION_VERBS);
    }

    #[test]
    fn iocs_and_verbs_annotated() {
        let t = build("The attacker used /bin/tar to read user credentials from /etc/passwd.");
        assert_eq!(t.ioc_of.len(), 2);
        // "read" is a candidate; "used" is not on the curated list.
        let lemmas: Vec<&str> = t.verb_lemma.values().map(String::as_str).collect();
        assert_eq!(lemmas, vec!["read"]);
        assert!(t.active);
    }

    #[test]
    fn pronouns_annotated() {
        let t = build("It wrote the gathered information to a file /tmp/upload.tar.");
        assert_eq!(t.pronouns.len(), 1);
        assert_eq!(t.ioc_of.len(), 1);
        assert!(t.active);
    }

    #[test]
    fn inactive_without_verbs_or_iocs() {
        // No candidate relation verb.
        let t = build("The weather in /etc/passwd was pleasant.");
        assert!(!t.active);
        // Verb but no IOC and no pronoun.
        let t = build("The attacker read the document carefully.");
        assert!(!t.active);
    }

    #[test]
    fn unprotected_paths_fail_to_align() {
        // Without protection, /etc/passwd shatters; no token aligns.
        let text = "The tool read from /etc/passwd.";
        let iocs = scan_iocs(text);
        let spans: Vec<(usize, usize, usize)> =
            iocs.iter().enumerate().map(|(k, m)| (m.start, m.end, k)).collect();
        let mut toks = tokenize::tokenize(text, 0);
        pos::tag(&mut toks);
        let tree = dep::parse(&toks);
        let t = annotate(toks, tree, None, &spans);
        assert!(t.ioc_of.is_empty(), "shattered IOC must not align");
        // ...but a token-stable IOC (an IP) does align.
        let text2 = "The tool connects to 192.168.29.128 now.";
        let iocs2 = scan_iocs(text2);
        let spans2: Vec<(usize, usize, usize)> =
            iocs2.iter().enumerate().map(|(k, m)| (m.start, m.end, k)).collect();
        let mut toks2 = tokenize::tokenize(text2, 0);
        pos::tag(&mut toks2);
        let tree2 = dep::parse(&toks2);
        let t2 = annotate(toks2, tree2, None, &spans2);
        assert_eq!(t2.ioc_of.len(), 1);
    }
}
