//! Threat behavior graph (Step 10 of Algorithm 1).
//!
//! Nodes are merged IOCs, edges are IOC relations. Every edge carries a
//! *sequence number* assigned by iterating triples "sorted by the occurrence
//! offset of the relation verb in OSCTI text" — the temporal backbone that
//! query synthesis turns into `with evt1 before evt2 ...` clauses.

use crate::ioc::IocType;

/// A node: one merged IOC.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GraphNode {
    pub id: usize,
    /// Canonical (longest) surface form.
    pub text: String,
    pub ioc_type: IocType,
}

/// An edge: a directed IOC relation with its step order.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GraphEdge {
    pub src: usize,
    pub dst: usize,
    /// Lemmatized relation verb.
    pub relation: String,
    /// 1-based step order.
    pub seq: u32,
}

/// The threat behavior graph.
#[derive(Clone, Default, Debug)]
pub struct ThreatBehaviorGraph {
    pub nodes: Vec<GraphNode>,
    pub edges: Vec<GraphEdge>,
}

impl ThreatBehaviorGraph {
    /// Builds the graph from canonical nodes and globally-ordered triples
    /// (already sorted by verb occurrence). Duplicate (src, relation, dst)
    /// edges collapse into the earliest occurrence.
    pub fn build(
        canon: Vec<(String, IocType)>,
        ordered_triples: &[(usize, String, usize)],
    ) -> Self {
        let nodes: Vec<GraphNode> = canon
            .into_iter()
            .enumerate()
            .map(|(id, (text, ioc_type))| GraphNode { id, text, ioc_type })
            .collect();
        let mut edges: Vec<GraphEdge> = Vec::new();
        for (src, relation, dst) in ordered_triples.iter().cloned() {
            if edges.iter().any(|e| e.src == src && e.dst == dst && e.relation == relation) {
                continue;
            }
            let seq = edges.len() as u32 + 1;
            edges.push(GraphEdge { src, dst, relation, seq });
        }
        ThreatBehaviorGraph { nodes, edges }
    }

    pub fn node(&self, id: usize) -> &GraphNode {
        &self.nodes[id]
    }

    /// Nodes with at least one incident edge.
    pub fn connected_nodes(&self) -> Vec<usize> {
        let mut seen = vec![false; self.nodes.len()];
        for e in &self.edges {
            seen[e.src] = true;
            seen[e.dst] = true;
        }
        (0..self.nodes.len()).filter(|&i| seen[i]).collect()
    }

    /// Human-readable rendering (one edge per line, in sequence order).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.edges {
            out.push_str(&format!(
                "{}. {} -[{}]-> {}\n",
                e.seq, self.nodes[e.src].text, e.relation, self.nodes[e.dst].text
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_assigns_sequence_numbers() {
        let canon = vec![
            ("/bin/tar".to_string(), IocType::FilePath),
            ("/etc/passwd".to_string(), IocType::FilePath),
            ("/tmp/upload.tar".to_string(), IocType::FilePath),
        ];
        let triples = vec![
            (0, "read".to_string(), 1),
            (0, "write".to_string(), 2),
            (0, "read".to_string(), 1), // duplicate collapses
        ];
        let g = ThreatBehaviorGraph::build(canon, &triples);
        assert_eq!(g.edges.len(), 2);
        assert_eq!(g.edges[0].seq, 1);
        assert_eq!(g.edges[1].seq, 2);
        assert_eq!(g.edges[0].relation, "read");
        assert_eq!(g.connected_nodes(), vec![0, 1, 2]);
    }

    #[test]
    fn disconnected_nodes_reported() {
        let canon = vec![
            ("/bin/tar".to_string(), IocType::FilePath),
            ("10.0.0.1".to_string(), IocType::Ip),
        ];
        let g = ThreatBehaviorGraph::build(canon, &[]);
        assert!(g.connected_nodes().is_empty());
        assert_eq!(g.nodes.len(), 2);
    }

    #[test]
    fn render_is_ordered() {
        let canon =
            vec![("a".to_string(), IocType::FileName), ("b".to_string(), IocType::FileName)];
        let g = ThreatBehaviorGraph::build(canon, &[(0, "read".to_string(), 1)]);
        assert_eq!(g.render(), "1. a -[read]-> b\n");
    }
}
