//! Cross-block IOC scan & merge (Step 8 of Algorithm 1).
//!
//! The same IOC often appears in different surface forms across blocks —
//! "upload.tar" in one paragraph, "/tmp/upload.tar" in another. Merging
//! combines character-level overlap with n-gram vector similarity (the
//! paper uses word vectors; see DESIGN.md §1), with a file-name guard:
//! paths merge only when their basenames agree, so `/tmp/upload.tar` and
//! `/tmp/upload.tar.bz2` stay distinct nodes.

use raptor_nlp::vector;

use crate::ioc::IocType;
use crate::pipeline::IocEntity;

/// Similarity thresholds (combined rule, both must clear).
const OVERLAP_MIN: f64 = 0.8;
const COSINE_MIN: f32 = 0.55;

fn basename(path: &str) -> &str {
    path.rsplit(['/', '\\']).next().unwrap_or(path)
}

fn same_family(a: &IocType, b: &IocType) -> bool {
    a == b || (a.is_file_like() && b.is_file_like()) || (a.is_network_like() && b.is_network_like())
}

/// Should two IOCs merge into one node?
pub fn should_merge(a: &IocEntity, b: &IocEntity) -> bool {
    if !same_family(&a.ioc_type, &b.ioc_type) {
        return false;
    }
    if a.text == b.text {
        return true;
    }
    if a.ioc_type.is_file_like() && b.ioc_type.is_file_like() {
        // File identity lives in the basename: "/tmp/upload.tar" merges with
        // "upload.tar" but never with "/tmp/upload.tar.bz2".
        if !basename(&a.text).eq_ignore_ascii_case(basename(&b.text)) {
            return false;
        }
        // One must be a path-suffix of the other (or a bare name).
        let (short, long) =
            if a.text.len() <= b.text.len() { (&a.text, &b.text) } else { (&b.text, &a.text) };
        return long.ends_with(short.as_str());
    }
    // Network / other types: strict-ish textual agreement.
    let overlap = raptor_common::strdist::containment_overlap(&a.text, &b.text);
    let cos = vector::similarity(&a.text, &b.text);
    overlap >= OVERLAP_MIN && cos >= COSINE_MIN && {
        // IP addresses never merge unless equal (each address is a distinct
        // indicator); CIDR forms merge with their base address.
        if a.ioc_type == IocType::Ip && b.ioc_type == IocType::Ip {
            let strip = |s: &str| s.split('/').next().unwrap_or(s).to_string();
            strip(&a.text) == strip(&b.text)
        } else {
            true
        }
    }
}

/// Merges a flat entity list into canonical groups. Returns, per input
/// entity, the id of its group, plus the canonical (longest) text and type
/// of each group.
pub fn merge(entities: &[IocEntity]) -> (Vec<usize>, Vec<(String, IocType)>) {
    let mut group_of: Vec<usize> = Vec::with_capacity(entities.len());
    let mut canon: Vec<(String, IocType)> = Vec::new();
    let mut members: Vec<Vec<usize>> = Vec::new();
    for (i, e) in entities.iter().enumerate() {
        let mut found = None;
        'outer: for (g, mem) in members.iter().enumerate() {
            for &m in mem {
                if should_merge(e, &entities[m]) {
                    found = Some(g);
                    break 'outer;
                }
            }
        }
        match found {
            Some(g) => {
                group_of.push(g);
                members[g].push(i);
                // Canonical form: the longest text wins (paths beat names).
                if e.text.len() > canon[g].0.len() {
                    canon[g] = (e.text.clone(), e.ioc_type);
                }
            }
            None => {
                group_of.push(canon.len());
                members.push(vec![i]);
                canon.push((e.text.clone(), e.ioc_type));
            }
        }
    }
    (group_of, canon)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ent(text: &str, ty: IocType) -> IocEntity {
        IocEntity { text: text.to_string(), ioc_type: ty, block: 0, offset: 0 }
    }

    #[test]
    fn basename_variants_merge() {
        assert!(should_merge(
            &ent("/tmp/upload.tar", IocType::FilePath),
            &ent("upload.tar", IocType::FileName)
        ));
    }

    #[test]
    fn distinct_files_never_merge() {
        assert!(!should_merge(
            &ent("/tmp/upload.tar", IocType::FilePath),
            &ent("/tmp/upload.tar.bz2", IocType::FilePath)
        ));
        assert!(!should_merge(
            &ent("/etc/passwd", IocType::FilePath),
            &ent("/etc/shadow", IocType::FilePath)
        ));
        // Same basename, different directories: textual suffix rule blocks.
        assert!(!should_merge(
            &ent("/tmp/x/evil.sh", IocType::FilePath),
            &ent("/var/y/evil.sh", IocType::FilePath)
        ));
    }

    #[test]
    fn exact_duplicates_merge() {
        assert!(should_merge(
            &ent("/bin/tar", IocType::FilePath),
            &ent("/bin/tar", IocType::FilePath)
        ));
        assert!(should_merge(
            &ent("192.168.29.128", IocType::Ip),
            &ent("192.168.29.128", IocType::Ip)
        ));
    }

    #[test]
    fn different_ips_never_merge() {
        assert!(!should_merge(
            &ent("192.168.29.128", IocType::Ip),
            &ent("192.168.29.129", IocType::Ip)
        ));
        // CIDR form merges with its base address.
        assert!(should_merge(
            &ent("192.168.29.128", IocType::Ip),
            &ent("192.168.29.128/32", IocType::Ip)
        ));
    }

    #[test]
    fn cross_type_families() {
        // A file never merges with an IP.
        assert!(!should_merge(
            &ent("/tmp/upload", IocType::FilePath),
            &ent("10.0.0.1", IocType::Ip)
        ));
    }

    #[test]
    fn merge_groups_and_canonical_forms() {
        let ents = vec![
            ent("/tmp/upload.tar", IocType::FilePath),
            ent("upload.tar", IocType::FileName),
            ent("/tmp/upload.tar.bz2", IocType::FilePath),
            ent("192.168.29.128", IocType::Ip),
            ent("/tmp/upload.tar", IocType::FilePath),
        ];
        let (groups, canon) = merge(&ents);
        assert_eq!(groups[0], groups[1], "name merges into path");
        assert_eq!(groups[0], groups[4], "duplicate merges");
        assert_ne!(groups[0], groups[2], "bz2 stays separate");
        assert_ne!(groups[0], groups[3]);
        assert_eq!(canon[groups[0]].0, "/tmp/upload.tar");
        assert_eq!(canon.len(), 3);
    }
}
