//! Threat behavior extraction (Algorithm 1 of the paper).
//!
//! Turns unstructured OSCTI report text into a structured *threat behavior
//! graph* whose nodes are IOCs and whose edges are IOC relations with
//! sequence numbers. The pipeline is unsupervised and rule-based:
//!
//! 1.  block segmentation ([`pipeline`]),
//! 2.  IOC recognition ([`ioc`]) and **IOC protection** ([`protect`]),
//! 3.  sentence segmentation (via `raptor-nlp`),
//! 4.  dependency parsing (via `raptor-nlp`), then protection removal,
//! 5.  tree annotation ([`annotate`]: IOC nodes, candidate relation verbs,
//!     pronouns),
//! 6.  tree simplification ([`annotate`]),
//! 7.  within-block coreference resolution ([`coref`]),
//! 8.  cross-block IOC scan & merge ([`merge`]),
//! 9.  dependency-path (LCA) relation extraction ([`relation`]),
//! 10. threat behavior graph construction ([`graph`]).
//!
//! [`openie`] implements the two general information-extraction baselines
//! of Table V (clause-based triple extractors, run with and without IOC
//! protection) — general tools whose tokenization shatters IOCs, which is
//! exactly what the paper measures them doing.

pub mod annotate;
pub mod coref;
pub mod graph;
pub mod ioc;
pub mod merge;
pub mod openie;
pub mod pipeline;
pub mod protect;
pub mod relation;

pub use graph::{GraphEdge, GraphNode, ThreatBehaviorGraph};
pub use ioc::{scan_iocs, IocMatch, IocType};
pub use pipeline::{extract, ExtractionOutput, IocEntity, IocRelationTriple};
