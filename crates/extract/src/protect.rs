//! IOC protection (Step 2 of Algorithm 1).
//!
//! Replaces every recognized IOC with the dummy word `something` and keeps a
//! replacement record, so the generic NLP stages (sentence segmentation,
//! tokenization, tagging, parsing) see ordinary prose. After parsing, the
//! record aligns the dummy tokens back to their original IOCs — the paper's
//! "RemoveIocProtection" step.

use crate::ioc::IocMatch;

/// The dummy word IOCs are replaced with. The paper uses lowercase
/// "something"; we capitalize so that an IOC *opening* a sentence
/// ("/bin/bzip2 read from ...") still lets the next segmenter see a
/// sentence-initial capital. Tagging is unaffected (the lexicon matches
/// case-insensitively).
pub const DUMMY: &str = "Something";

/// Replacement record: where in the protected text each IOC sits.
#[derive(Clone, Debug)]
pub struct ReplacementRecord {
    /// For each replaced IOC, in text order: (byte offset of the dummy word
    /// in the protected text, index into the IOC list).
    pub slots: Vec<(usize, usize)>,
}

/// Output of protection.
#[derive(Clone, Debug)]
pub struct ProtectedText {
    pub text: String,
    pub record: ReplacementRecord,
}

/// Protects `text`, replacing each IOC span with [`DUMMY`].
///
/// `iocs` must be non-overlapping and sorted by start offset (as
/// [`crate::ioc::scan_iocs`] returns them).
pub fn protect(text: &str, iocs: &[IocMatch]) -> ProtectedText {
    let mut out = String::with_capacity(text.len());
    let mut slots = Vec::with_capacity(iocs.len());
    let mut cursor = 0usize;
    for (idx, m) in iocs.iter().enumerate() {
        debug_assert!(m.start >= cursor, "IOC matches must be sorted and disjoint");
        out.push_str(&text[cursor..m.start]);
        slots.push((out.len(), idx));
        out.push_str(DUMMY);
        cursor = m.end;
    }
    out.push_str(&text[cursor..]);
    ProtectedText { text: out, record: ReplacementRecord { slots } }
}

impl ReplacementRecord {
    /// If a token span `[start, end)` in the protected text is exactly one
    /// of the dummy slots, returns the IOC index it replaced.
    pub fn ioc_at(&self, start: usize, end: usize) -> Option<usize> {
        if end - start != DUMMY.len() {
            return None;
        }
        // slots are sorted by offset; binary search.
        self.slots.binary_search_by_key(&start, |&(off, _)| off).ok().map(|i| self.slots[i].1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ioc::scan_iocs;

    #[test]
    fn protection_roundtrip() {
        let text = "the attacker used /bin/tar to read from /etc/passwd.";
        let iocs = scan_iocs(text);
        assert_eq!(iocs.len(), 2);
        let p = protect(text, &iocs);
        assert_eq!(p.text, "the attacker used Something to read from Something.");
        assert_eq!(p.record.slots.len(), 2);
        // Each slot maps back to its IOC.
        let (off0, idx0) = p.record.slots[0];
        assert_eq!(&p.text[off0..off0 + DUMMY.len()], DUMMY);
        assert_eq!(iocs[idx0].text, "/bin/tar");
        assert_eq!(p.record.ioc_at(off0, off0 + DUMMY.len()), Some(0));
    }

    #[test]
    fn non_slot_spans_return_none() {
        let text = "read /etc/passwd now";
        let iocs = scan_iocs(text);
        let p = protect(text, &iocs);
        // "read" is not a slot.
        assert_eq!(p.record.ioc_at(0, 4), None);
        // Off-by-one around the slot.
        let (off, _) = p.record.slots[0];
        assert_eq!(p.record.ioc_at(off + 1, off + 1 + DUMMY.len()), None);
    }

    #[test]
    fn no_iocs_is_identity() {
        let text = "ordinary prose without indicators.";
        let p = protect(text, &[]);
        assert_eq!(p.text, text);
        assert!(p.record.slots.is_empty());
    }

    #[test]
    fn adjacent_iocs() {
        let text = "/bin/tar /etc/passwd";
        let iocs = scan_iocs(text);
        let p = protect(text, &iocs);
        assert_eq!(p.text, "Something Something");
        assert_eq!(p.record.ioc_at(0, 9), Some(0));
        assert_eq!(p.record.ioc_at(10, 19), Some(1));
    }

    #[test]
    fn protected_text_parses_cleanly() {
        // End-to-end sanity: protection makes the sentence parseable.
        let text = "The attacker used /bin/tar to read user credentials from /etc/passwd.";
        let iocs = scan_iocs(text);
        let p = protect(text, &iocs);
        let sents = raptor_nlp::sentence::sentences(&p.text);
        assert_eq!(sents.len(), 1);
        let mut toks = raptor_nlp::tokenize::tokenize(sents[0], 0);
        raptor_nlp::pos::tag(&mut toks);
        let dummies: Vec<_> = toks.iter().filter(|t| t.text == DUMMY).collect();
        assert_eq!(dummies.len(), 2);
        assert!(dummies.iter().all(|t| t.pos == raptor_nlp::PosTag::Noun));
    }
}
