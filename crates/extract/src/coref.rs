//! Within-block coreference resolution (Step 7 of Algorithm 1).
//!
//! CTI prose routinely refers back to a tool by pronoun or by a generic
//! noun phrase: "The attacker used **/bin/tar** to read ... **It** wrote the
//! gathered information to /tmp/upload.tar", or "the attacker downloaded
//! **/tmp/vpnfilter**. **The malware** then connects to ...". This pass
//! links subject pronouns and generic-NP subjects to the most recent
//! *agentive* IOC of a compatible type, across the trees of one block.

use raptor_nlp::{DepLabel, PosTag};

use crate::annotate::AnnTree;
use crate::ioc::IocType;

/// Generic noun heads that corefer with file-like IOCs (tools, binaries).
const FILE_LIKE_NOUNS: &[&str] = &[
    "archive",
    "attachment",
    "backdoor",
    "binary",
    "cracker",
    "dropper",
    "executable",
    "extension",
    "file",
    "image",
    "implant",
    "installer",
    "loader",
    "malware",
    "package",
    "payload",
    "program",
    "sample",
    "script",
    "tool",
    "utility",
];

/// Generic noun heads that corefer with network-like IOCs.
const NET_LIKE_NOUNS: &[&str] = &["address", "domain", "host", "server"];

/// An agentive mention: an IOC that acted as (or was used as) the doer.
#[derive(Clone, Copy, Debug)]
struct Agent {
    ioc: usize,
    file_like: bool,
    /// True for subjects, gerund-clause heads and use-verb instruments —
    /// the antecedents subject pronouns prefer (centering); plain direct
    /// objects are only antecedents for generic NPs ("the malware").
    subject_like: bool,
}

/// Is token `i` in a subject-ish position (nsubj of some verb, or the head
/// a gerund clause hangs off)?
fn is_subject_position(t: &AnnTree, i: usize) -> bool {
    matches!(t.tree.nodes[i].label, DepLabel::Nsubj | DepLabel::NsubjPass)
}

/// Collects agentive IOC mentions of a tree, in token order.
fn agents_of(t: &AnnTree, ioc_types: &[IocType]) -> Vec<Agent> {
    let mut out = Vec::new();
    for (&tok, &ioc) in &t.ioc_of {
        let lbl = t.tree.nodes[tok].label;
        let agentive = match lbl {
            // Direct subject.
            DepLabel::Nsubj => Some(true),
            // Direct object: an instrument ("used /bin/tar to ...") is
            // subject-like; a newly introduced artifact ("downloaded
            // /tmp/vpnfilter") is an antecedent only for generic NPs.
            DepLabel::Dobj => {
                let instrument = t.tree.nodes[tok].head.is_some_and(|h| {
                    matches!(
                        raptor_nlp::lemma::lemmatize_verb(&t.tokens[h].lower).as_str(),
                        "use" | "leverage" | "utilize" | "employ"
                    )
                });
                Some(instrument)
            }
            // Head noun of a gerund clause ("process X reading from ...").
            _ => t.tree.nodes[tok]
                .children
                .iter()
                .any(|&c| t.tree.nodes[c].label == DepLabel::Acl)
                .then_some(true),
        };
        if let Some(subject_like) = agentive {
            let file_like = ioc_types.get(ioc).is_some_and(|ty| ty.is_file_like());
            out.push((tok, Agent { ioc, file_like, subject_like }));
        }
    }
    // Coreference-resolved subjects ("The dropper read ...") move the
    // discourse center to their antecedent IOC.
    for (&tok, &ioc) in &t.coref {
        if is_subject_position(t, tok) {
            let file_like = ioc_types.get(ioc).is_some_and(|ty| ty.is_file_like());
            out.push((tok, Agent { ioc, file_like, subject_like: true }));
        }
    }
    out.sort_by_key(|&(tok, _)| tok);
    out.into_iter().map(|(_, a)| a).collect()
}

/// Resolves coreference across the trees of one block. `ioc_types[i]` is the
/// type of block-level IOC `i`.
pub fn resolve(trees: &mut [AnnTree], ioc_types: &[IocType]) {
    let mut history: Vec<Agent> = Vec::new();
    #[allow(clippy::needless_range_loop)]
    for t_idx in 0..trees.len() {
        // Resolve this tree's anaphors against history (previous sentences).
        let mut links: Vec<(usize, usize)> = Vec::new();
        {
            let t = &trees[t_idx];
            if t.active {
                for i in 0..t.tokens.len() {
                    if !is_subject_position(t, i) {
                        continue;
                    }
                    if t.ioc_of.contains_key(&i) {
                        continue; // already an IOC subject
                    }
                    let is_pronoun = t.pronouns.contains(&i);
                    let want_file_like = if is_pronoun {
                        None // pronouns accept any kind, but prefer subjects
                    } else if t.tokens[i].pos == PosTag::Noun
                        && FILE_LIKE_NOUNS.contains(&t.tokens[i].lower.as_str())
                    {
                        Some(true)
                    } else if t.tokens[i].pos == PosTag::Noun
                        && NET_LIKE_NOUNS.contains(&t.tokens[i].lower.as_str())
                    {
                        Some(false)
                    } else {
                        continue; // "the attacker" etc. — not coreferable to an IOC
                    };
                    let kind_ok = |a: &&Agent| match want_file_like {
                        Some(want) => a.file_like == want,
                        None => true,
                    };
                    // Pronouns prefer the most recent subject-like agent
                    // (centering); generic NPs take the most recent of the
                    // right kind.
                    let found = if is_pronoun {
                        history
                            .iter()
                            .rev()
                            .find(|a| a.subject_like && kind_ok(a))
                            .or_else(|| history.iter().rev().find(kind_ok))
                    } else {
                        history.iter().rev().find(kind_ok)
                    };
                    if let Some(a) = found {
                        links.push((i, a.ioc));
                    }
                }
            }
        }
        for (tok, ioc) in links {
            trees[t_idx].coref.insert(tok, ioc);
        }
        // Record this tree's agents for later sentences.
        history.extend(agents_of(&trees[t_idx], ioc_types));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::annotate;
    use crate::ioc::scan_iocs;
    use crate::protect::protect;
    use raptor_nlp::{dep, pos, sentence, tokenize};

    fn build_block(text: &str) -> (Vec<AnnTree>, Vec<IocType>) {
        let iocs = scan_iocs(text);
        let types: Vec<IocType> = iocs.iter().map(|m| m.ioc_type).collect();
        let p = protect(text, &iocs);
        let mut trees = Vec::new();
        for span in sentence::segment(&p.text) {
            let mut toks = tokenize::tokenize(&p.text[span.start..span.end], span.start);
            pos::tag(&mut toks);
            let tree = dep::parse(&toks);
            trees.push(annotate(toks, tree, Some(&p.record), &[]));
        }
        let mut trees = trees;
        resolve(&mut trees, &types);
        (trees, types)
    }

    #[test]
    fn pronoun_resolves_to_instrument() {
        let (trees, _) = build_block(
            "The attacker used /bin/tar to read user credentials from /etc/passwd. \
             It wrote the gathered information to a file /tmp/upload.tar.",
        );
        assert_eq!(trees.len(), 2);
        // "It" in sentence 2 links to IOC 0 (/bin/tar).
        let t2 = &trees[1];
        assert_eq!(t2.coref.len(), 1);
        let (_, &ioc) = t2.coref.iter().next().unwrap();
        assert_eq!(ioc, 0);
    }

    #[test]
    fn generic_np_resolves_to_file_like() {
        let (trees, _) = build_block(
            "The attacker downloaded /tmp/vpnfilter from the C2 server. \
             The malware then connects to 192.168.29.100.",
        );
        let t2 = &trees[1];
        // "malware" subject → /tmp/vpnfilter (IOC 0); the IP is not a
        // candidate antecedent for a file-like noun.
        assert!(t2.coref.values().any(|&v| v == 0), "coref: {:?}", t2.coref);
    }

    #[test]
    fn subject_ioc_is_not_overwritten() {
        let (trees, _) = build_block(
            "/bin/bzip2 read from /tmp/upload.tar and wrote to /tmp/upload.tar.bz2. \
             /usr/bin/gpg read from /tmp/upload.tar.bz2.",
        );
        // Sentence 2's subject is already an IOC; nothing to resolve.
        assert!(trees[1].coref.is_empty());
    }

    #[test]
    fn no_antecedent_no_link() {
        let (trees, _) = build_block("It connects to 192.168.29.128.");
        assert!(trees[0].coref.is_empty());
    }
}
