//! The end-to-end extraction pipeline (Algorithm 1).
//!
//! `document → blocks → (protect → sentences → parse → restore → annotate →
//! simplify → coref) per block → scan&merge IOCs → relation extraction →
//! threat behavior graph`, with stage timings recorded for Table VII.

use std::time::Instant;

use raptor_nlp::{dep, pos, sentence, tokenize};
use serde::{Deserialize, Serialize};

use crate::annotate::{annotate, AnnTree};
use crate::coref;
use crate::graph::ThreatBehaviorGraph;
use crate::ioc::{scan_iocs, IocType};
use crate::merge;
use crate::protect::protect;
use crate::relation;

/// One extracted IOC occurrence (pre-merge), for entity-level scoring.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct IocEntity {
    pub text: String,
    pub ioc_type: IocType,
    /// Block the occurrence came from.
    pub block: usize,
    /// Byte offset in the original block text.
    pub offset: usize,
}

/// One extracted relation, as surface strings (for relation-level scoring).
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct IocRelationTriple {
    pub subj: String,
    pub verb: String,
    pub obj: String,
}

/// Stage timings (seconds), the rows of Table VII.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExtractTiming {
    /// Text → IOC entities & relations.
    pub text_to_er: f64,
    /// Entities & relations → threat behavior graph.
    pub er_to_graph: f64,
}

/// Everything the pipeline produces.
#[derive(Clone, Debug)]
pub struct ExtractionOutput {
    /// IOC occurrences that made it into the trees (annotated), pre-merge.
    pub entities: Vec<IocEntity>,
    /// Extracted relation triples (canonical node texts).
    pub triples: Vec<IocRelationTriple>,
    pub graph: ThreatBehaviorGraph,
    pub timing: ExtractTiming,
}

/// Splits a document into blocks (paragraphs separated by blank lines).
pub fn segment_blocks(document: &str) -> Vec<&str> {
    document.split("\n\n").map(str::trim).filter(|b| !b.is_empty()).collect()
}

struct BlockResult {
    /// IOCs recognized in this block (block-local indexing).
    iocs: Vec<IocEntity>,
    /// Which block-local IOCs were annotated in some tree (i.e. visible to
    /// the NLP pipeline — this is what entity extraction "found").
    annotated: Vec<bool>,
    trees: Vec<AnnTree>,
}

fn process_block(block_idx: usize, block: &str, ioc_protection: bool) -> BlockResult {
    let matches = scan_iocs(block);
    let iocs: Vec<IocEntity> = matches
        .iter()
        .map(|m| IocEntity {
            text: m.text.clone(),
            ioc_type: m.ioc_type,
            block: block_idx,
            offset: m.start,
        })
        .collect();
    let types: Vec<IocType> = matches.iter().map(|m| m.ioc_type).collect();

    let mut trees = Vec::new();
    if ioc_protection {
        let p = protect(block, &matches);
        for span in sentence::segment(&p.text) {
            let mut toks = tokenize::tokenize(&p.text[span.start..span.end], span.start);
            pos::tag(&mut toks);
            let tree = dep::parse(&toks);
            trees.push(annotate(toks, tree, Some(&p.record), &[]));
        }
    } else {
        // Ablation: parse the raw text. IOCs align only when the tokenizer
        // happens to keep them whole.
        let spans: Vec<(usize, usize, usize)> =
            matches.iter().enumerate().map(|(k, m)| (m.start, m.end, k)).collect();
        for span in sentence::segment(block) {
            let mut toks = tokenize::tokenize(&block[span.start..span.end], span.start);
            pos::tag(&mut toks);
            let tree = dep::parse(&toks);
            trees.push(annotate(toks, tree, None, &spans));
        }
    }
    coref::resolve(&mut trees, &types);

    let mut annotated = vec![false; iocs.len()];
    for t in &trees {
        for &ioc in t.ioc_of.values() {
            annotated[ioc] = true;
        }
    }
    BlockResult { iocs, annotated, trees }
}

/// Runs the full pipeline with IOC protection (the system configuration).
pub fn extract(document: &str) -> ExtractionOutput {
    extract_with_options(document, true)
}

/// Runs the pipeline, optionally without IOC protection (the Table V
/// "-IOC Protection" ablation).
pub fn extract_with_options(document: &str, ioc_protection: bool) -> ExtractionOutput {
    let t0 = Instant::now();
    let blocks = segment_blocks(document);
    let mut block_results = Vec::with_capacity(blocks.len());
    for (i, b) in blocks.iter().enumerate() {
        block_results.push(process_block(i, b, ioc_protection));
    }

    // Flatten block-local IOCs into a global list; remember offsets.
    let mut all_iocs: Vec<IocEntity> = Vec::new();
    let mut base: Vec<usize> = Vec::with_capacity(block_results.len());
    for br in &block_results {
        base.push(all_iocs.len());
        all_iocs.extend(br.iocs.iter().cloned());
    }

    // Per-block relation extraction (block-local ioc ids → global ids).
    let mut raw_triples: Vec<(usize, String, usize, (usize, usize))> = Vec::new();
    for (bi, br) in block_results.iter().enumerate() {
        for t in relation::extract_from_block(&br.trees) {
            raw_triples.push((base[bi] + t.subj, t.verb, base[bi] + t.obj, (bi, t.verb_offset)));
        }
    }
    raw_triples.sort_by_key(|&(_, _, _, ord)| ord);
    let text_to_er = t0.elapsed().as_secs_f64();

    // Entities "found" by the pipeline = annotated occurrences.
    let mut entities: Vec<IocEntity> = Vec::new();
    for br in &block_results {
        for (k, e) in br.iocs.iter().enumerate() {
            if br.annotated[k] {
                entities.push(e.clone());
            }
        }
    }

    // Scan & merge across blocks, then build the graph.
    let t1 = Instant::now();
    let (group_of, canon) = merge::merge(&all_iocs);
    let ordered: Vec<(usize, String, usize)> =
        raw_triples.iter().map(|(s, v, o, _)| (group_of[*s], v.clone(), group_of[*o])).collect();
    let graph = ThreatBehaviorGraph::build(canon, &ordered);
    let triples: Vec<IocRelationTriple> = graph
        .edges
        .iter()
        .map(|e| IocRelationTriple {
            subj: graph.nodes[e.src].text.clone(),
            verb: e.relation.clone(),
            obj: graph.nodes[e.dst].text.clone(),
        })
        .collect();
    let er_to_graph = t1.elapsed().as_secs_f64();

    ExtractionOutput { entities, triples, graph, timing: ExtractTiming { text_to_er, er_to_graph } }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Figure 2 report text (the paper's running example, case data_leak).
    pub const FIG2_TEXT: &str = "\
After the lateral movement stage, the attacker attempts to steal valuable assets \
from the host. As a first step, the attacker used /bin/tar to read user credentials \
from /etc/passwd. It wrote the gathered information to a file /tmp/upload.tar. \
Then, the attacker leveraged /bin/bzip2 utility to compress the tar file. \
/bin/bzip2 read from /tmp/upload.tar and wrote to /tmp/upload.tar.bz2. \
After compression, the attacker used the GnuPG tool to encrypt the zipped file, \
which corresponds to the launched process /usr/bin/gpg reading from /tmp/upload.tar.bz2. \
/usr/bin/gpg then wrote the sensitive information to /tmp/upload. \
Finally, the attacker leveraged the curl utility /usr/bin/curl to read the data from /tmp/upload. \
He leaked the gathered sensitive information back to the attacker C2 host by using \
/usr/bin/curl to connect to 192.168.29.128.";

    #[test]
    fn figure2_graph_has_the_eight_steps() {
        let out = extract(FIG2_TEXT);
        let g = &out.graph;
        let find = |s: &str| g.nodes.iter().find(|n| n.text == s).map(|n| n.id);
        let tar = find("/bin/tar");
        let passwd = find("/etc/passwd");
        let uptar = find("/tmp/upload.tar");
        let bzip = find("/bin/bzip2");
        let bz2 = find("/tmp/upload.tar.bz2");
        let gpg = find("/usr/bin/gpg");
        let upload = find("/tmp/upload");
        let curl = find("/usr/bin/curl");
        let ip = find("192.168.29.128");
        for (name, n) in [
            ("tar", tar),
            ("passwd", passwd),
            ("uptar", uptar),
            ("bzip", bzip),
            ("bz2", bz2),
            ("gpg", gpg),
            ("upload", upload),
            ("curl", curl),
            ("ip", ip),
        ] {
            assert!(
                n.is_some(),
                "node {name} missing; nodes: {:?}",
                g.nodes.iter().map(|n| &n.text).collect::<Vec<_>>()
            );
        }
        let has_edge = |s: Option<usize>, rel: &str, d: Option<usize>| {
            g.edges.iter().any(|e| Some(e.src) == s && Some(e.dst) == d && e.relation == rel)
        };
        assert!(has_edge(tar, "read", passwd), "{}", g.render());
        assert!(has_edge(tar, "write", uptar), "{}", g.render());
        assert!(has_edge(bzip, "read", uptar), "{}", g.render());
        assert!(has_edge(bzip, "write", bz2), "{}", g.render());
        assert!(has_edge(gpg, "read", bz2), "{}", g.render());
        assert!(has_edge(gpg, "write", upload), "{}", g.render());
        assert!(has_edge(curl, "read", upload), "{}", g.render());
        assert!(has_edge(curl, "connect", ip), "{}", g.render());
    }

    #[test]
    fn figure2_sequence_order_matches_narrative() {
        let out = extract(FIG2_TEXT);
        let g = &out.graph;
        let edge_seq = |rel: &str, dst_text: &str| {
            g.edges
                .iter()
                .find(|e| e.relation == rel && g.nodes[e.dst].text == dst_text)
                .map(|e| e.seq)
                .unwrap_or(0)
        };
        let read_passwd = edge_seq("read", "/etc/passwd");
        let write_uptar = edge_seq("write", "/tmp/upload.tar");
        let connect_ip = edge_seq("connect", "192.168.29.128");
        assert!(read_passwd < write_uptar, "{}", g.render());
        assert!(write_uptar < connect_ip, "{}", g.render());
    }

    #[test]
    fn entity_extraction_finds_annotated_iocs() {
        let out = extract(FIG2_TEXT);
        let texts: Vec<&str> = out.entities.iter().map(|e| e.text.as_str()).collect();
        assert!(texts.contains(&"/bin/tar"));
        assert!(texts.contains(&"192.168.29.128"));
    }

    #[test]
    fn without_protection_extraction_collapses() {
        let with = extract_with_options(FIG2_TEXT, true);
        let without = extract_with_options(FIG2_TEXT, false);
        assert!(without.entities.len() < with.entities.len());
        assert!(without.triples.len() < with.triples.len().max(1));
    }

    #[test]
    fn empty_and_iocless_documents() {
        let out = extract("");
        assert!(out.graph.nodes.is_empty());
        let out = extract("Nothing interesting happened today.\n\nStill nothing.");
        assert!(out.graph.edges.is_empty());
    }

    #[test]
    fn blocks_merge_same_ioc() {
        let doc = "The dropper wrote upload.tar to disk.\n\n\
                   Later /bin/bzip2 read from /tmp/upload.tar again.";
        let out = extract(doc);
        // "upload.tar" and "/tmp/upload.tar" become one node.
        let count = out.graph.nodes.iter().filter(|n| n.text.contains("upload.tar")).count();
        assert_eq!(count, 1, "{:?}", out.graph.nodes);
    }
}
