//! Dependency-path (LCA) IOC relation extraction (Step 9 of Algorithm 1).
//!
//! For every ordered pair of IOC-ish nodes (IOC tokens plus coreference-
//! resolved pronouns/generic NPs) in a tree, the extractor checks whether
//! the pair stands in a subject–object relation by examining the labels on
//! the two dependency paths from their LCA (plus the root→LCA part for verb
//! selection), then picks the candidate relation verb *closest to the
//! object* and lemmatizes it. A token only becomes the relation verb if it
//! is both on the curated keyword list and structurally on the pair's path.

use raptor_nlp::DepLabel;

use crate::annotate::AnnTree;

/// One extracted triple, with block/tree provenance for ordering.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RawTriple {
    /// Block-level IOC index of the subject.
    pub subj: usize,
    /// Lemmatized relation verb.
    pub verb: String,
    /// Block-level IOC index of the object.
    pub obj: usize,
    /// Byte offset of the relation verb in the block's protected text
    /// (drives sequence numbering).
    pub verb_offset: usize,
}

/// Verbs whose direct object is an instrument acting as the subject of a
/// following infinitive ("used X to read Y").
const USE_VERBS: &[&str] = &["employ", "leverage", "use", "utilize"];

/// Prepositions that introduce the object of a dobj/pobj pair
/// ("downloaded X **from** Y", "transferred X **to** Y").
const OBJECT_PREPS: &[&str] = &["against", "at", "from", "into", "onto", "to", "toward", "towards"];

/// The IOC-ish node set of a tree: real IOC tokens plus coref-resolved ones.
fn ioc_nodes(t: &AnnTree) -> Vec<(usize, usize)> {
    let mut v: Vec<(usize, usize)> = t
        .ioc_of
        .iter()
        .map(|(&tok, &ioc)| (tok, ioc))
        .chain(t.coref.iter().map(|(&tok, &ioc)| (tok, ioc)))
        .collect();
    v.sort_unstable();
    v
}

/// Strips leading clause-link labels (Conj/Xcomp/Acl/RelCl) and trailing
/// Conj runs, leaving the grammatical-function core of a path.
fn core_labels(labels: &[DepLabel]) -> &[DepLabel] {
    let mut s = 0usize;
    while s < labels.len()
        && matches!(labels[s], DepLabel::Conj | DepLabel::Xcomp | DepLabel::Acl | DepLabel::RelCl)
    {
        s += 1;
    }
    let mut e = labels.len();
    while e > s && labels[e - 1] == DepLabel::Conj {
        e -= 1;
    }
    &labels[s..e]
}

/// The lowercased text of the first node on the LCA→node path (the
/// preposition of a `[Prep, Pobj]` path).
fn first_path_token(t: &AnnTree, lca: usize, node: usize) -> Option<&str> {
    t.tree.nodes_from(lca, node).first().map(|&i| t.tokens[i].lower.as_str())
}

fn lemma_at(t: &AnnTree, i: usize) -> String {
    raptor_nlp::lemma::lemmatize_verb(&t.tokens[i].lower)
}

/// Is `a` on the subject side of the pair?
fn subject_side(t: &AnnTree, lca: usize, a: usize, la: &[DepLabel], lb: &[DepLabel]) -> bool {
    // Active subject.
    if la == [DepLabel::Nsubj] {
        return true;
    }
    // Gerund clause: A is the LCA itself, B hangs off an acl.
    if la.is_empty() && lb.first() == Some(&DepLabel::Acl) {
        return true;
    }
    // Passive agent: "was downloaded by A".
    if la == [DepLabel::Prep, DepLabel::Pobj] && first_path_token(t, lca, a) == Some("by") {
        return true;
    }
    // Instrument: "used A to <verb> B".
    if la == [DepLabel::Dobj]
        && lb.first() == Some(&DepLabel::Xcomp)
        && USE_VERBS.contains(&lemma_at(t, lca).as_str())
    {
        return true;
    }
    false
}

/// Is `b` on the object side of the pair?
fn object_side(t: &AnnTree, lca: usize, b: usize, lb: &[DepLabel]) -> bool {
    let core = core_labels(lb);
    match core {
        [DepLabel::Dobj] | [DepLabel::NsubjPass] | [DepLabel::Dep] => true,
        [DepLabel::Prep, DepLabel::Pobj] => {
            // Any preposition except the agentive "by".
            let path = t.tree.nodes_from(lca, b);
            // The Prep node is the first whose label is Prep.
            let prep = path
                .iter()
                .find(|&&i| t.tree.nodes[i].label == DepLabel::Prep)
                .map(|&i| t.tokens[i].lower.as_str());
            prep != Some("by")
        }
        _ => false,
    }
}

/// The dobj/pobj pattern: "downloaded A from B", "transferred A to B".
fn dobj_pobj_pair(t: &AnnTree, lca: usize, la: &[DepLabel], lb: &[DepLabel], b: usize) -> bool {
    if core_labels(la) != [DepLabel::Dobj] {
        return false;
    }
    if core_labels(lb) != [DepLabel::Prep, DepLabel::Pobj] {
        return false;
    }
    let path = t.tree.nodes_from(lca, b);
    let prep = path
        .iter()
        .find(|&&i| t.tree.nodes[i].label == DepLabel::Prep)
        .map(|&i| t.tokens[i].lower.as_str());
    prep.is_some_and(|p| OBJECT_PREPS.contains(&p))
}

/// Selects the relation verb for a pair: candidate verbs on the LCA→B path
/// (nearest to B first), then the LCA itself, then the root→LCA path
/// (nearest to the LCA first). Returns `(token index, lemma)`.
fn select_verb(t: &AnnTree, lca: usize, b: usize) -> Option<(usize, String)> {
    let mut candidates: Vec<usize> = Vec::new();
    let b_path = t.tree.nodes_from(lca, b);
    candidates.extend(b_path.iter().rev().copied());
    candidates.push(lca);
    let mut up = t.tree.path_to_root(lca);
    up.retain(|&x| x != lca);
    candidates.extend(up);
    for c in candidates {
        if t.verb_candidates.contains(&c) {
            return Some((c, t.verb_lemma[&c].clone()));
        }
    }
    None
}

/// Extracts all triples from one annotated tree.
pub fn extract_from_tree(t: &AnnTree) -> Vec<RawTriple> {
    if !t.active {
        return Vec::new();
    }
    let nodes = ioc_nodes(t);
    let mut out: Vec<RawTriple> = Vec::new();
    for &(a_tok, a_ioc) in &nodes {
        for &(b_tok, b_ioc) in &nodes {
            if a_tok == b_tok {
                continue;
            }
            let lca = t.tree.lca(a_tok, b_tok);
            let la = t.tree.labels_from(lca, a_tok);
            let lb = t.tree.labels_from(lca, b_tok);
            let subj_obj = subject_side(t, lca, a_tok, &la, &lb) && object_side(t, lca, b_tok, &lb);
            let dobj_pobj = dobj_pobj_pair(t, lca, &la, &lb, b_tok);
            if !subj_obj && !dobj_pobj {
                continue;
            }
            let Some((verb_tok, verb)) = select_verb(t, lca, b_tok) else {
                continue;
            };
            let triple =
                RawTriple { subj: a_ioc, verb, obj: b_ioc, verb_offset: t.tokens[verb_tok].start };
            if !out
                .iter()
                .any(|x| x.subj == triple.subj && x.obj == triple.obj && x.verb == triple.verb)
            {
                out.push(triple);
            }
        }
    }
    out
}

/// Extracts triples from all trees of one block.
pub fn extract_from_block(trees: &[AnnTree]) -> Vec<RawTriple> {
    let mut out = Vec::new();
    for t in trees {
        out.extend(extract_from_tree(t));
    }
    out.sort_by_key(|r| r.verb_offset);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::annotate;
    use crate::coref;
    use crate::ioc::{scan_iocs, IocType};
    use crate::protect::protect;
    use raptor_nlp::{dep, pos, sentence, tokenize};

    fn extract_block(text: &str) -> (Vec<RawTriple>, Vec<String>) {
        let iocs = scan_iocs(text);
        let types: Vec<IocType> = iocs.iter().map(|m| m.ioc_type).collect();
        let texts: Vec<String> = iocs.iter().map(|m| m.text.clone()).collect();
        let p = protect(text, &iocs);
        let mut trees = Vec::new();
        for span in sentence::segment(&p.text) {
            let mut toks = tokenize::tokenize(&p.text[span.start..span.end], span.start);
            pos::tag(&mut toks);
            let tree = dep::parse(&toks);
            trees.push(annotate(toks, tree, Some(&p.record), &[]));
        }
        coref::resolve(&mut trees, &types);
        (extract_from_block(&trees), texts)
    }

    fn as_strings(triples: &[RawTriple], texts: &[String]) -> Vec<(String, String, String)> {
        triples
            .iter()
            .map(|t| (texts[t.subj].clone(), t.verb.clone(), texts[t.obj].clone()))
            .collect()
    }

    #[test]
    fn instrument_relation() {
        let (triples, texts) =
            extract_block("The attacker used /bin/tar to read user credentials from /etc/passwd.");
        assert_eq!(
            as_strings(&triples, &texts),
            vec![("/bin/tar".to_string(), "read".to_string(), "/etc/passwd".to_string())]
        );
    }

    #[test]
    fn coref_subject_relation() {
        let (triples, texts) = extract_block(
            "The attacker used /bin/tar to read user credentials from /etc/passwd. \
             It wrote the gathered information to a file /tmp/upload.tar.",
        );
        let s = as_strings(&triples, &texts);
        assert!(s.contains(&(
            "/bin/tar".to_string(),
            "read".to_string(),
            "/etc/passwd".to_string()
        )));
        assert!(
            s.contains(&(
                "/bin/tar".to_string(),
                "write".to_string(),
                "/tmp/upload.tar".to_string()
            )),
            "{s:?}"
        );
    }

    #[test]
    fn coordinated_verbs() {
        let (triples, texts) =
            extract_block("/bin/bzip2 read from /tmp/upload.tar and wrote to /tmp/upload.tar.bz2.");
        let s = as_strings(&triples, &texts);
        assert!(
            s.contains(&(
                "/bin/bzip2".to_string(),
                "read".to_string(),
                "/tmp/upload.tar".to_string()
            )),
            "{s:?}"
        );
        assert!(
            s.contains(&(
                "/bin/bzip2".to_string(),
                "write".to_string(),
                "/tmp/upload.tar.bz2".to_string()
            )),
            "{s:?}"
        );
        // The two file IOCs must not relate to each other.
        assert_eq!(s.len(), 2, "{s:?}");
    }

    #[test]
    fn gerund_clause_relation() {
        let (triples, texts) = extract_block(
            "This corresponds to the launched process /usr/bin/gpg reading from /tmp/upload.tar.bz2.",
        );
        let s = as_strings(&triples, &texts);
        assert!(
            s.contains(&(
                "/usr/bin/gpg".to_string(),
                "read".to_string(),
                "/tmp/upload.tar.bz2".to_string()
            )),
            "{s:?}"
        );
    }

    #[test]
    fn passive_agent_relation() {
        let (triples, texts) = extract_block("/tmp/payload.bin was downloaded by /usr/bin/curl.");
        let s = as_strings(&triples, &texts);
        assert!(
            s.contains(&(
                "/usr/bin/curl".to_string(),
                "download".to_string(),
                "/tmp/payload.bin".to_string()
            )),
            "{s:?}"
        );
    }

    #[test]
    fn dobj_pobj_relation() {
        let (triples, texts) =
            extract_block("The attacker downloaded /tmp/john.zip from 192.168.29.128.");
        let s = as_strings(&triples, &texts);
        assert!(
            s.contains(&(
                "/tmp/john.zip".to_string(),
                "download".to_string(),
                "192.168.29.128".to_string()
            )),
            "{s:?}"
        );
    }

    #[test]
    fn connect_via_using() {
        let (triples, texts) = extract_block(
            "He leaked the data by using /usr/bin/curl to connect to 192.168.29.128.",
        );
        let s = as_strings(&triples, &texts);
        assert!(
            s.contains(&(
                "/usr/bin/curl".to_string(),
                "connect".to_string(),
                "192.168.29.128".to_string()
            )),
            "{s:?}"
        );
    }

    #[test]
    fn non_keyword_verbs_produce_nothing() {
        let (triples, _) = extract_block("/bin/tar resembles /bin/gtar in many ways.");
        assert!(triples.is_empty());
    }

    #[test]
    fn ordering_by_verb_offset() {
        let (triples, _) =
            extract_block("/bin/bzip2 read from /tmp/upload.tar and wrote to /tmp/upload.tar.bz2.");
        assert!(triples.windows(2).all(|w| w[0].verb_offset <= w[1].verb_offset));
        assert_eq!(triples[0].verb, "read");
        assert_eq!(triples[1].verb, "write");
    }
}
