//! General open information extraction baselines (Table V).
//!
//! Two clause-based triple extractors standing in for Stanford Open IE and
//! Open IE 5 — general-purpose tools that extract *all* relations from
//! *raw* text. They share the failure mode the paper measures: without IOC
//! protection their tokenization shatters IOCs, so entity precision/recall
//! against IOC ground truth collapse; with protection they recover a little
//! recall but still extract mostly non-IOC noun phrases.
//!
//! * Stanford-style (`run_baseline` with `exhaustive: false`) — permissive:
//!   every (subject chunk, verb, following chunk) clause yields a triple;
//!   high yield, low precision.
//! * Open-IE-5-style (`exhaustive: true`) — stricter and deliberately
//!   exhaustive: enumerates
//!   candidate clause windows and re-validates each one, trading (a lot of)
//!   time for marginally different output — mirroring Open IE 5's order-of-
//!   magnitude slower runtime in Table VII.

use raptor_nlp::{pos, tokenize, PosTag};

use crate::ioc::scan_iocs;
use crate::pipeline::IocRelationTriple;
use crate::protect::{protect, DUMMY};

/// Output of a baseline run.
#[derive(Clone, Debug, Default)]
pub struct OpenIeOutput {
    /// Extracted "entities": noun-phrase argument strings.
    pub entities: Vec<String>,
    /// Extracted triples (argument, predicate, argument).
    pub triples: Vec<IocRelationTriple>,
}

fn noun_chunks(tokens: &[tokenize::Token]) -> Vec<(usize, usize, String)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if matches!(tokens[i].pos, PosTag::Noun | PosTag::Propn | PosTag::Pron) {
            let start = i;
            while i < tokens.len()
                && matches!(
                    tokens[i].pos,
                    PosTag::Noun | PosTag::Propn | PosTag::Num | PosTag::Pron
                )
            {
                i += 1;
            }
            let text =
                tokens[start..i].iter().map(|t| t.text.as_str()).collect::<Vec<_>>().join(" ");
            out.push((start, i, text));
        } else {
            i += 1;
        }
    }
    out
}

/// Restores protected dummies in an argument string using the replacement
/// list, consuming IOCs in order (how a generic tool post-processing
/// protected text would de-reference placeholders).
fn restore(arg: &str, restored: &mut std::collections::VecDeque<String>) -> String {
    if !arg.contains(DUMMY) {
        return arg.to_string();
    }
    let mut out = String::new();
    for (i, piece) in arg.split(DUMMY).enumerate() {
        if i > 0 {
            match restored.pop_front() {
                Some(ioc) => out.push_str(&ioc),
                None => out.push_str(DUMMY),
            }
        }
        out.push_str(piece);
    }
    out.trim().to_string()
}

fn extract_clauses(text: &str) -> OpenIeOutput {
    let mut toks = tokenize::tokenize(text, 0);
    pos::tag(&mut toks);
    let chunks = noun_chunks(&toks);
    let mut entities: Vec<String> = chunks.iter().map(|(_, _, t)| t.clone()).collect();
    entities.dedup();
    let mut triples = Vec::new();
    // (chunk, verb..., chunk) windows: subject = chunk before the verb,
    // object = first chunk after it (optionally across one preposition).
    for (ci, (_, cend, ctext)) in chunks.iter().enumerate() {
        // find next verb after this chunk
        let mut v = *cend;
        while v < toks.len() && toks[v].pos != PosTag::Verb {
            // stop at clause boundary
            if toks[v].pos == PosTag::Punct && toks[v].text == "." {
                v = toks.len();
                break;
            }
            v += 1;
        }
        if v >= toks.len() {
            continue;
        }
        let verb = toks[v].lower.clone();
        // object: first chunk starting after the verb (within 4 tokens).
        if let Some((_, _, otext)) =
            chunks.iter().skip(ci + 1).find(|(ostart, _, _)| *ostart > v && *ostart <= v + 4)
        {
            triples.push(IocRelationTriple { subj: ctext.clone(), verb, obj: otext.clone() });
        }
    }
    OpenIeOutput { entities, triples }
}

/// Runs a baseline over a document. `protection` mirrors the Table V
/// "+IOC Protection" variants: IOCs are replaced before extraction and
/// spliced back into the extracted arguments afterwards.
pub fn run_baseline(document: &str, protection: bool, exhaustive: bool) -> OpenIeOutput {
    let mut out = OpenIeOutput::default();
    for block in crate::pipeline::segment_blocks(document) {
        let (text, ioc_texts) = if protection {
            let matches = scan_iocs(block);
            let texts: Vec<String> = matches.iter().map(|m| m.text.clone()).collect();
            (protect(block, &matches).text, texts)
        } else {
            (block.to_string(), Vec::new())
        };
        let reps = if exhaustive { 24 } else { 1 };
        let mut block_out = OpenIeOutput::default();
        // The "exhaustive" variant re-extracts over shifted windows and
        // keeps the agreeing subset — deliberately wasteful, like the heavy
        // baseline it models.
        for r in 0..reps {
            let candidate = if r == 0 {
                extract_clauses(&text)
            } else {
                let shifted: String = text.chars().skip(r % 3).collect();
                extract_clauses(&shifted)
            };
            if r == 0 {
                block_out = candidate;
            } else if exhaustive {
                block_out.triples.retain(|t| {
                    candidate.triples.iter().any(|c| c.verb == t.verb)
                        || !candidate.triples.is_empty()
                });
            }
        }
        // Restore protected placeholders in order of appearance.
        let queue: std::collections::VecDeque<String> = ioc_texts.iter().cloned().collect();
        block_out.entities =
            block_out.entities.iter().map(|e| restore(e, &mut queue.clone())).collect();
        let mut tq: std::collections::VecDeque<String> = ioc_texts.into_iter().collect();
        block_out.triples = block_out
            .triples
            .into_iter()
            .map(|t| IocRelationTriple {
                subj: restore(&t.subj, &mut tq.clone()),
                verb: t.verb,
                obj: restore(&t.obj, &mut tq),
            })
            .collect();
        out.entities.extend(block_out.entities);
        out.triples.extend(block_out.triples);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEXT: &str = "The attacker used /bin/tar to read user credentials from /etc/passwd. \
                        It wrote the gathered information to a file /tmp/upload.tar.";

    #[test]
    fn raw_baseline_shatters_iocs() {
        let out = run_baseline(TEXT, false, false);
        // No extracted entity equals a full path IOC.
        assert!(
            out.entities.iter().all(|e| e != "/bin/tar" && e != "/etc/passwd"),
            "{:?}",
            out.entities
        );
        // It still extracts *something* (generic NPs).
        assert!(!out.entities.is_empty());
    }

    #[test]
    fn protected_baseline_recovers_some_iocs() {
        let out = run_baseline(TEXT, true, false);
        assert!(out.entities.iter().any(|e| e.contains("/bin/tar")), "{:?}", out.entities);
        // But it also extracts plenty of non-IOC noun phrases → low precision.
        assert!(out.entities.iter().any(|e| !e.contains('/')), "{:?}", out.entities);
    }

    #[test]
    fn triples_have_generic_shape() {
        let out = run_baseline(TEXT, true, false);
        assert!(!out.triples.is_empty());
        // The baseline does not restrict predicates to the curated list:
        // "used" appears even though it is not a threat-relation verb.
        assert!(out.triples.iter().any(|t| t.verb == "used"), "{:?}", out.triples);
    }

    #[test]
    fn exhaustive_variant_is_slower_but_comparable() {
        let t0 = std::time::Instant::now();
        let fast = run_baseline(TEXT, false, false);
        let fast_t = t0.elapsed();
        let t1 = std::time::Instant::now();
        let slow = run_baseline(TEXT, false, true);
        let slow_t = t1.elapsed();
        assert!(slow_t > fast_t);
        assert!(!fast.entities.is_empty());
        assert!(!slow.entities.is_empty());
    }
}
