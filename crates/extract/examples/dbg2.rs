fn main() {
    let text = "\
As a first step, the attacker used /bin/tar to read user credentials \
from /etc/passwd. It wrote the gathered information to a file /tmp/upload.tar. \
/bin/bzip2 read from /tmp/upload.tar and wrote to /tmp/upload.tar.bz2. \
This corresponds to the launched process /usr/bin/gpg reading from /tmp/upload.tar.bz2. \
/usr/bin/gpg then wrote the sensitive information to /tmp/upload. \
Finally, the attacker used /usr/bin/curl to read the data from /tmp/upload. \
He leaked the data back to the C2 host by using /usr/bin/curl to connect to 192.168.29.128.";
    let out = raptor_extract::extract(text);
    println!("{}", out.graph.render());
}
