//! Query execution.
//!
//! Three execution paths, matching the four query variants of Table VIII:
//!
//! * [`ExecMode::Scheduled`] — ThreatRaptor's plan: compile each pattern to
//!   a small SQL/Cypher data query, execute in pruning-score order with
//!   `IN`-filter propagation, then join per-pattern matches on shared
//!   entities, apply `with`-clause constraints, and project. (Variants (a)
//!   and (c): event patterns run on the relational store, length-1 path
//!   patterns on the graph store.)
//! * [`ExecMode::GiantSql`] — one giant compiled SQL statement (variant (b)).
//! * [`ExecMode::GiantCypher`] — one giant compiled Cypher statement
//!   (variant (d)).
//!
//! All three return the same [`ResultTable`] for the same query — the
//! backend-equivalence integration tests assert it.

use raptor_common::error::{Error, Result};
use raptor_common::hash::{FxHashMap, FxHashSet};
use raptor_common::time::Duration;
use raptor_graphstore::cypher::{exec as gexec, parse_cypher};
use raptor_tbql::analyze::{AnalyzedQuery, RetItem};
use raptor_tbql::{analyze, parse_tbql, CmpOp, PatternOp, RelClause, TemporalOp};

use crate::compile::{
    cypher_for_path_pattern, giant_cypher, giant_sql, sql_for_event_pattern, table_for_type,
    CompileCtx, Propagation,
};
use crate::load::LoadedStores;
use crate::schedule::execution_order;

/// Execution strategy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExecMode {
    Scheduled,
    GiantSql,
    GiantCypher,
}

/// Engine-level execution statistics.
#[derive(Clone, Debug, Default)]
pub struct EngineStats {
    /// Number of data queries issued (scheduled mode).
    pub data_queries: usize,
    /// The compiled data-query texts, in execution order.
    pub query_texts: Vec<String>,
    /// Patterns whose result was empty (query short-circuited).
    pub short_circuited: bool,
}

/// A query result: projected column names and stringly rows.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResultTable {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl ResultTable {
    /// Rows as a sorted set (order-insensitive comparison in tests).
    pub fn sorted_rows(&self) -> Vec<Vec<String>> {
        let mut rows = self.rows.clone();
        rows.sort();
        rows
    }
}

/// One pattern match: subject/object entity ids plus (for patterns with a
/// final hop) the event id and its timestamps.
#[derive(Clone, Copy, Debug)]
struct Match {
    subj: i64,
    obj: i64,
    evt: i64,
    start: i64,
    end: i64,
}

/// The query engine over a pair of loaded stores.
pub struct Engine {
    pub stores: LoadedStores,
    /// Hop cap for unbounded variable-length paths.
    pub max_hops: u32,
}

impl Engine {
    pub fn new(stores: LoadedStores) -> Self {
        Engine { stores, max_hops: gexec::DEFAULT_MAX_HOPS }
    }

    /// Parses, analyzes and executes a TBQL query text.
    pub fn execute_text(&self, tbql: &str, mode: ExecMode) -> Result<(ResultTable, EngineStats)> {
        let q = parse_tbql(tbql)?;
        let aq = analyze(&q)?;
        self.execute(&aq, mode)
    }

    /// Executes an analyzed query.
    pub fn execute(&self, aq: &AnalyzedQuery, mode: ExecMode) -> Result<(ResultTable, EngineStats)> {
        match mode {
            ExecMode::Scheduled => self.execute_scheduled(aq),
            ExecMode::GiantSql => self.execute_giant_sql(aq),
            ExecMode::GiantCypher => self.execute_giant_cypher(aq),
        }
    }

    fn ctx<'a>(&self, aq: &'a AnalyzedQuery) -> CompileCtx<'a> {
        CompileCtx { aq, now_ns: self.stores.now_ns }
    }

    /// Executes each pattern's data query *independently* (no propagation,
    /// no cross-pattern join) and returns the matched event ids per pattern.
    /// This is the hunting-evaluation view: every pattern contributes its
    /// matches even when another pattern (e.g. an excessive synthesized one)
    /// matches nothing. Patterns without a final hop contribute no events.
    pub fn pattern_event_matches(
        &self,
        aq: &AnalyzedQuery,
    ) -> Result<Vec<(String, Vec<i64>)>> {
        let ctx = self.ctx(aq);
        let mut empty = Propagation::default();
        self.seed_entity_candidates(aq, &mut empty)?;
        let mut out = Vec::with_capacity(aq.patterns.len());
        for p in &aq.patterns {
            let mut ids: Vec<i64> = if p.is_path() {
                let cy = cypher_for_path_pattern(&ctx, p, &empty)?;
                let parsed = parse_cypher(&cy)?;
                let r = gexec::execute(&self.stores.graph, &parsed, self.max_hops)?;
                r.rows
                    .iter()
                    .filter(|row| row.len() >= 5)
                    .filter_map(|row| row[2].as_int())
                    .collect()
            } else {
                let sql = sql_for_event_pattern(&ctx, p, &empty)?;
                let r = self.stores.rel.query(&sql)?;
                r.rows.iter().filter_map(|row| row[2].as_int()).collect()
            };
            ids.sort_unstable();
            ids.dedup();
            out.push((p.id.clone(), ids));
        }
        Ok(out)
    }

    fn execute_giant_sql(&self, aq: &AnalyzedQuery) -> Result<(ResultTable, EngineStats)> {
        let sql = giant_sql(&self.ctx(aq))?;
        let r = self.stores.rel.query(&sql)?;
        let stats = EngineStats {
            data_queries: 1,
            query_texts: vec![sql],
            short_circuited: false,
        };
        Ok((ResultTable { columns: r.columns.clone(), rows: r.rendered_rows() }, stats))
    }

    fn execute_giant_cypher(&self, aq: &AnalyzedQuery) -> Result<(ResultTable, EngineStats)> {
        let cy = giant_cypher(&self.ctx(aq))?;
        let parsed = parse_cypher(&cy)?;
        let r = gexec::execute(&self.stores.graph, &parsed, self.max_hops)?;
        let rows = r
            .rows
            .iter()
            .map(|row| row.iter().map(gexec::GVal::render).collect())
            .collect();
        let stats =
            EngineStats { data_queries: 1, query_texts: vec![cy], short_circuited: false };
        Ok((ResultTable { columns: r.columns, rows }, stats))
    }

    /// Seeds the propagation table by resolving every filtered entity to its
    /// candidate ids with one small indexed query per entity — the "parts"
    /// with the highest pruning power always execute first.
    fn seed_entity_candidates(&self, aq: &AnalyzedQuery, prop: &mut Propagation) -> Result<usize> {
        let mut queries = 0usize;
        for id in &aq.entity_order {
            let e = &aq.entities[id];
            let Some(filter) = &e.filter else { continue };
            let sql = crate::compile::entity_candidate_sql(id, e.ty, filter);
            let r = self.stores.rel.query(&sql)?;
            queries += 1;
            let mut ids: Vec<i64> = r.rows.iter().filter_map(|row| row[0].as_int()).collect();
            ids.sort_unstable();
            ids.dedup();
            prop.entity_ids.insert(id.clone(), ids);
        }
        Ok(queries)
    }

    fn execute_scheduled(&self, aq: &AnalyzedQuery) -> Result<(ResultTable, EngineStats)> {
        let ctx = self.ctx(aq);
        let order = execution_order(aq);
        let mut prop = Propagation::default();
        let mut stats = EngineStats::default();
        stats.data_queries += self.seed_entity_candidates(aq, &mut prop)?;
        let mut matches: Vec<Option<Vec<Match>>> = vec![None; aq.patterns.len()];

        for &idx in &order {
            let p = &aq.patterns[idx];
            let rows: Vec<Match> = if p.is_path() {
                let cy = cypher_for_path_pattern(&ctx, p, &prop)?;
                stats.query_texts.push(cy.clone());
                let parsed = parse_cypher(&cy)?;
                let r = gexec::execute(&self.stores.graph, &parsed, self.max_hops)?;
                r.rows
                    .iter()
                    .map(|row| {
                        let subj = row[0].as_int().unwrap_or(-1);
                        let obj = row[1].as_int().unwrap_or(-1);
                        if row.len() >= 5 {
                            Match {
                                subj,
                                obj,
                                evt: row[2].as_int().unwrap_or(-1),
                                start: row[3].as_int().unwrap_or(0),
                                end: row[4].as_int().unwrap_or(0),
                            }
                        } else {
                            Match { subj, obj, evt: -1, start: 0, end: 0 }
                        }
                    })
                    .collect()
            } else {
                let sql = sql_for_event_pattern(&ctx, p, &prop)?;
                stats.query_texts.push(sql.clone());
                let r = self.stores.rel.query(&sql)?;
                r.rows
                    .iter()
                    .map(|row| Match {
                        subj: as_i64(&row[0]),
                        obj: as_i64(&row[1]),
                        evt: as_i64(&row[2]),
                        start: as_i64(&row[3]),
                        end: as_i64(&row[4]),
                    })
                    .collect()
            };
            stats.data_queries += 1;
            // Propagate distinct entity ids into later data queries.
            for (var, extract) in [
                (&p.subject, 0usize),
                (&p.object, 1usize),
            ] {
                let mut ids: Vec<i64> = rows
                    .iter()
                    .map(|m| if extract == 0 { m.subj } else { m.obj })
                    .collect();
                ids.sort_unstable();
                ids.dedup();
                match prop.entity_ids.get_mut(var.as_str()) {
                    Some(existing) => {
                        let set: FxHashSet<i64> = ids.into_iter().collect();
                        existing.retain(|x| set.contains(x));
                    }
                    None => {
                        prop.entity_ids.insert(var.clone(), ids);
                    }
                }
            }
            let empty = rows.is_empty();
            matches[idx] = Some(rows);
            if empty {
                stats.short_circuited = true;
                break;
            }
        }

        let columns: Vec<String> = aq
            .ret
            .iter()
            .map(|r| format!("{}.{}", r.base, r.attr))
            .collect();
        if stats.short_circuited {
            return Ok((ResultTable { columns, rows: Vec::new() }, stats));
        }

        // --- join per-pattern matches on shared entity variables ---
        // Tuples hold one row index per pattern.
        let n = aq.patterns.len();
        let pattern_rows: Vec<&Vec<Match>> =
            matches.iter().map(|m| m.as_ref().expect("all executed")).collect();
        // Where does entity var appear in pattern k? (as subject/object)
        let var_positions = |k: usize| -> Vec<(&str, bool)> {
            let p = &aq.patterns[k];
            vec![(p.subject.as_str(), true), (p.object.as_str(), false)]
        };
        let mut tuples: Vec<Vec<u32>> = pattern_rows[0]
            .iter()
            .enumerate()
            .map(|(i, _)| {
                let mut t = vec![u32::MAX; n];
                t[0] = i as u32;
                t
            })
            .collect();
        let mut bound: Vec<usize> = vec![0];
        for k in 1..n {
            // Join keys: vars of pattern k already bound in earlier patterns.
            let mut keys: Vec<(bool, usize, bool)> = Vec::new();
            // (new_is_subject, earlier_pattern, earlier_is_subject)
            for (var, new_is_subj) in var_positions(k) {
                for &j in &bound {
                    if let Some(&(_, earlier_subj)) =
                        var_positions(j).iter().find(|(v, _)| *v == var)
                    {
                        keys.push((new_is_subj, j, earlier_subj));
                        break;
                    }
                }
            }
            let key_of_new = |m: &Match| -> Vec<i64> {
                keys.iter()
                    .map(|&(subj, _, _)| if subj { m.subj } else { m.obj })
                    .collect()
            };
            let key_of_tuple = |t: &[u32]| -> Vec<i64> {
                keys.iter()
                    .map(|&(_, j, earlier_subj)| {
                        let m = &pattern_rows[j][t[j] as usize];
                        if earlier_subj {
                            m.subj
                        } else {
                            m.obj
                        }
                    })
                    .collect()
            };
            if keys.is_empty() {
                let mut next = Vec::with_capacity(tuples.len() * pattern_rows[k].len().max(1));
                for t in &tuples {
                    for (i, _) in pattern_rows[k].iter().enumerate() {
                        let mut nt = t.clone();
                        nt[k] = i as u32;
                        next.push(nt);
                    }
                }
                tuples = next;
            } else {
                let mut build: FxHashMap<Vec<i64>, Vec<u32>> = FxHashMap::default();
                for (i, m) in pattern_rows[k].iter().enumerate() {
                    build.entry(key_of_new(m)).or_default().push(i as u32);
                }
                let mut next = Vec::new();
                for t in &tuples {
                    if let Some(rows) = build.get(&key_of_tuple(t)) {
                        for &i in rows {
                            let mut nt = t.clone();
                            nt[k] = i;
                            next.push(nt);
                        }
                    }
                }
                tuples = next;
            }
            bound.push(k);
            // Also enforce same-var-within-pattern equality (self-loops) and
            // repeated vars inside one pattern are handled by the compiled
            // data query itself (subject = object join on same alias).
        }

        // --- with-clause constraints ---
        let pat_index: FxHashMap<&str, usize> =
            aq.patterns.iter().map(|p| (p.id.as_str(), p.index)).collect();
        for rel in &aq.relations {
            match rel {
                RelClause::Temporal { left, op, range, right } => {
                    let li = pat_index[left.as_str()];
                    let ri = pat_index[right.as_str()];
                    let range_ns = match range {
                        Some((lo, hi, unit)) => {
                            let u = Duration::from_unit(1, unit).ok_or_else(|| {
                                Error::semantic(format!("unknown time unit `{unit}`"))
                            })?;
                            Some((lo * u.0, hi * u.0))
                        }
                        None => None,
                    };
                    tuples.retain(|t| {
                        let l = &pattern_rows[li][t[li] as usize];
                        let r = &pattern_rows[ri][t[ri] as usize];
                        temporal_holds(*op, range_ns, l.start, r.start)
                    });
                }
                RelClause::Attr { left, op, right } => {
                    // Resolve both sides' values per tuple via entity lookups.
                    let lvar = left.base.as_str();
                    let rvar = right.base.as_str();
                    let lattr = left.attr.as_deref().unwrap_or_default();
                    let rattr = right.attr.as_deref().unwrap_or_default();
                    let lvals = self.attr_map(aq, lvar, lattr, &tuples, &pattern_rows)?;
                    let rvals = self.attr_map(aq, rvar, rattr, &tuples, &pattern_rows)?;
                    let lpos = self.var_slot(aq, lvar)?;
                    let rpos = self.var_slot(aq, rvar)?;
                    tuples.retain(|t| {
                        let lid = id_at(&pattern_rows, t, lpos);
                        let rid = id_at(&pattern_rows, t, rpos);
                        match (lvals.get(&lid), rvals.get(&rid)) {
                            (Some(a), Some(b)) => cmp_strings(a, *op, b),
                            _ => false,
                        }
                    });
                }
            }
        }

        // --- projection ---
        let mut lookups: FxHashMap<(String, String), FxHashMap<i64, String>> =
            FxHashMap::default();
        for item in &aq.ret {
            if item.is_event {
                continue;
            }
            let slot = self.var_slot(aq, &item.base)?;
            let ids: FxHashSet<i64> =
                tuples.iter().map(|t| id_at(&pattern_rows, t, slot)).collect();
            let map = self.fetch_entity_attr(aq, &item.base, &item.attr, &ids)?;
            lookups.insert((item.base.clone(), item.attr.clone()), map);
        }
        // Event-attribute lookups beyond start/end/id go to the events table.
        let mut event_attr_maps: FxHashMap<(String, String), FxHashMap<i64, String>> =
            FxHashMap::default();
        for item in &aq.ret {
            if !item.is_event || matches!(item.attr.as_str(), "id" | "starttime" | "endtime") {
                continue;
            }
            let pi = pat_index[item.base.as_str()];
            let ids: FxHashSet<i64> = tuples
                .iter()
                .map(|t| pattern_rows[pi][t[pi] as usize].evt)
                .filter(|&e| e >= 0)
                .collect();
            let map = self.fetch_table_attr("events", &item.attr, &ids)?;
            event_attr_maps.insert((item.base.clone(), item.attr.clone()), map);
        }

        let mut rows: Vec<Vec<String>> = Vec::with_capacity(tuples.len());
        for t in &tuples {
            let mut row = Vec::with_capacity(aq.ret.len());
            for item in &aq.ret {
                row.push(self.project_item(aq, item, t, &pattern_rows, &lookups, &event_attr_maps, &pat_index)?);
            }
            rows.push(row);
        }
        if aq.distinct {
            let mut seen: FxHashSet<Vec<String>> = FxHashSet::default();
            rows.retain(|r| seen.insert(r.clone()));
        }
        Ok((ResultTable { columns, rows }, stats))
    }

    #[allow(clippy::too_many_arguments)]
    fn project_item(
        &self,
        aq: &AnalyzedQuery,
        item: &RetItem,
        t: &[u32],
        pattern_rows: &[&Vec<Match>],
        lookups: &FxHashMap<(String, String), FxHashMap<i64, String>>,
        event_attr_maps: &FxHashMap<(String, String), FxHashMap<i64, String>>,
        pat_index: &FxHashMap<&str, usize>,
    ) -> Result<String> {
        if item.is_event {
            let pi = pat_index[item.base.as_str()];
            let m = &pattern_rows[pi][t[pi] as usize];
            return Ok(match item.attr.as_str() {
                "id" => m.evt.to_string(),
                "starttime" => m.start.to_string(),
                "endtime" => m.end.to_string(),
                _ => event_attr_maps
                    .get(&(item.base.clone(), item.attr.clone()))
                    .and_then(|map| map.get(&m.evt))
                    .cloned()
                    .unwrap_or_default(),
            });
        }
        let slot = self.var_slot(aq, &item.base)?;
        let id = id_at(pattern_rows, t, slot);
        Ok(lookups
            .get(&(item.base.clone(), item.attr.clone()))
            .and_then(|map| map.get(&id))
            .cloned()
            .unwrap_or_default())
    }

    /// Finds where entity `var` is bound: (pattern index, is_subject).
    fn var_slot(&self, aq: &AnalyzedQuery, var: &str) -> Result<(usize, bool)> {
        for p in &aq.patterns {
            if p.subject == var {
                return Ok((p.index, true));
            }
            if p.object == var {
                return Ok((p.index, false));
            }
        }
        Err(Error::semantic(format!("entity `{var}` not bound by any pattern")))
    }

    fn attr_map(
        &self,
        aq: &AnalyzedQuery,
        var: &str,
        attr: &str,
        tuples: &[Vec<u32>],
        pattern_rows: &[&Vec<Match>],
    ) -> Result<FxHashMap<i64, String>> {
        let slot = self.var_slot(aq, var)?;
        let ids: FxHashSet<i64> = tuples.iter().map(|t| id_at(pattern_rows, t, slot)).collect();
        self.fetch_entity_attr(aq, var, attr, &ids)
    }

    fn fetch_entity_attr(
        &self,
        aq: &AnalyzedQuery,
        var: &str,
        attr: &str,
        ids: &FxHashSet<i64>,
    ) -> Result<FxHashMap<i64, String>> {
        let ty = aq.entities[var].ty;
        self.fetch_table_attr(table_for_type(ty), attr, ids)
    }

    fn fetch_table_attr(
        &self,
        table: &str,
        attr: &str,
        ids: &FxHashSet<i64>,
    ) -> Result<FxHashMap<i64, String>> {
        let mut out = FxHashMap::default();
        if ids.is_empty() {
            return Ok(out);
        }
        let mut sorted: Vec<i64> = ids.iter().copied().collect();
        sorted.sort_unstable();
        for chunk in sorted.chunks(4096) {
            let list: Vec<String> = chunk.iter().map(i64::to_string).collect();
            let sql = format!(
                "SELECT id, {attr} FROM {table} WHERE id IN ({})",
                list.join(", ")
            );
            let r = self.stores.rel.query(&sql)?;
            for row in &r.rows {
                if let Some(id) = row[0].as_int() {
                    out.insert(id, row[1].render());
                }
            }
        }
        Ok(out)
    }
}

fn id_at(pattern_rows: &[&Vec<Match>], t: &[u32], slot: (usize, bool)) -> i64 {
    let m = &pattern_rows[slot.0][t[slot.0] as usize];
    if slot.1 {
        m.subj
    } else {
        m.obj
    }
}

fn as_i64(v: &raptor_relstore::OwnedValue) -> i64 {
    v.as_int().unwrap_or(-1)
}

fn temporal_holds(op: TemporalOp, range_ns: Option<(i64, i64)>, l_start: i64, r_start: i64) -> bool {
    let delta = r_start - l_start;
    match op {
        TemporalOp::Before => match range_ns {
            Some((lo, hi)) => delta >= lo && delta <= hi && delta > 0,
            None => delta > 0,
        },
        TemporalOp::After => match range_ns {
            Some((lo, hi)) => -delta >= lo && -delta <= hi && delta < 0,
            None => delta < 0,
        },
        TemporalOp::Within => match range_ns {
            Some((lo, hi)) => delta.abs() >= lo && delta.abs() <= hi,
            None => true,
        },
    }
}

fn cmp_strings(a: &str, op: CmpOp, b: &str) -> bool {
    // Numeric comparison when both sides parse as integers.
    let ord = match (a.parse::<i64>(), b.parse::<i64>()) {
        (Ok(x), Ok(y)) => x.cmp(&y),
        _ => a.cmp(b),
    };
    match op {
        CmpOp::Eq => ord.is_eq(),
        CmpOp::Ne => !ord.is_eq(),
        CmpOp::Lt => ord.is_lt(),
        CmpOp::Le => ord.is_le(),
        CmpOp::Gt => ord.is_gt(),
        CmpOp::Ge => ord.is_ge(),
    }
}

/// Rewrites an event-pattern query into the paper's length-1 event path
/// variant (query type (c) of Table VIII): each `proc p OP file f` becomes
/// `proc p ->[OP] file f`, executing on the graph backend.
pub fn to_length1_path_query(q: &raptor_tbql::Query) -> raptor_tbql::Query {
    let mut out = q.clone();
    for p in &mut out.patterns {
        if let PatternOp::Event(op) = &p.op {
            p.op = PatternOp::Path {
                arrow: raptor_tbql::Arrow::Single,
                min: None,
                max: None,
                op: Some(op.clone()),
            };
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::load;
    use raptor_audit::sim::Simulator;
    use raptor_audit::LogParser;
    use raptor_common::time::Timestamp;

    /// Builds the Figure 2 data-leak scenario plus background noise.
    fn fig2_engine() -> Engine {
        let mut sim = Simulator::new(99, Timestamp::from_secs(1_000_000));
        raptor_audit::sim::generate_background(
            &mut sim,
            &raptor_audit::sim::BackgroundProfile { users: 3, sessions: 30, ..Default::default() },
        );
        let shell = sim.boot_process("/bin/bash", "root");
        let tar = sim.spawn(shell, "/bin/tar", "tar cf /tmp/upload.tar /etc/passwd");
        sim.read_file(tar, "/etc/passwd", 4096, 4);
        sim.write_file(tar, "/tmp/upload.tar", 4096, 4);
        sim.exit(tar);
        let bzip = sim.spawn(shell, "/bin/bzip2", "bzip2 /tmp/upload.tar");
        sim.read_file(bzip, "/tmp/upload.tar", 4096, 2);
        sim.write_file(bzip, "/tmp/upload.tar.bz2", 2048, 2);
        sim.exit(bzip);
        let gpg = sim.spawn(shell, "/usr/bin/gpg", "gpg -c");
        sim.read_file(gpg, "/tmp/upload.tar.bz2", 2048, 2);
        sim.write_file(gpg, "/tmp/upload", 2048, 2);
        sim.exit(gpg);
        let curl = sim.spawn(shell, "/usr/bin/curl", "curl");
        sim.read_file(curl, "/tmp/upload", 2048, 2);
        let fd = sim.connect(curl, "192.168.29.128", 443);
        sim.send(curl, fd, 2048, 2);
        sim.exit(curl);
        let mut log = LogParser::parse(&sim.finish());
        raptor_audit::merge_events(&mut log.events, raptor_audit::reduce::DEFAULT_THRESHOLD);
        Engine::new(load(&log).unwrap())
    }

    #[test]
    fn figure2_query_finds_the_attack_scheduled() {
        let engine = fig2_engine();
        let (r, stats) = engine
            .execute_text(raptor_tbql::parser::FIG2_QUERY, ExecMode::Scheduled)
            .unwrap();
        assert!(stats.data_queries >= 8, "{stats:?}");
        assert_eq!(r.columns.len(), 9);
        assert_eq!(r.rows.len(), 1, "{:?}", r.rows);
        let row = &r.rows[0];
        assert_eq!(row[0], "/bin/tar");
        assert_eq!(row[1], "/etc/passwd");
        assert_eq!(row[8], "192.168.29.128");
    }

    #[test]
    fn giant_sql_agrees_with_scheduled() {
        let engine = fig2_engine();
        let (a, _) = engine
            .execute_text(raptor_tbql::parser::FIG2_QUERY, ExecMode::Scheduled)
            .unwrap();
        let (b, _) = engine
            .execute_text(raptor_tbql::parser::FIG2_QUERY, ExecMode::GiantSql)
            .unwrap();
        assert_eq!(a.sorted_rows(), b.sorted_rows());
    }

    #[test]
    fn giant_cypher_agrees_with_scheduled() {
        let engine = fig2_engine();
        let (a, _) = engine
            .execute_text(raptor_tbql::parser::FIG2_QUERY, ExecMode::Scheduled)
            .unwrap();
        let (c, _) = engine
            .execute_text(raptor_tbql::parser::FIG2_QUERY, ExecMode::GiantCypher)
            .unwrap();
        assert_eq!(a.sorted_rows(), c.sorted_rows());
    }

    #[test]
    fn length1_path_variant_agrees() {
        let engine = fig2_engine();
        let q = parse_tbql(raptor_tbql::parser::FIG2_QUERY).unwrap();
        let path_q = to_length1_path_query(&q);
        let aq = analyze(&path_q).unwrap();
        let (r, stats) = engine.execute(&aq, ExecMode::Scheduled).unwrap();
        // All 8 data queries went to the graph backend.
        assert!(stats.query_texts.iter().all(|t| t.starts_with("MATCH")));
        let (a, _) = engine
            .execute_text(raptor_tbql::parser::FIG2_QUERY, ExecMode::Scheduled)
            .unwrap();
        assert_eq!(a.sorted_rows(), r.sorted_rows());
    }

    #[test]
    fn temporal_constraints_filter() {
        let engine = fig2_engine();
        // Reversed temporal order matches nothing.
        let q = "proc p4[\"%/usr/bin/curl%\"] connect ip i1 as e1 \
                 proc p1[\"%/bin/tar%\"] read file f1[\"%/etc/passwd%\"] as e2 \
                 with e1 before e2 return p4, i1";
        let (r, _) = engine.execute_text(q, ExecMode::Scheduled).unwrap();
        assert!(r.rows.is_empty());
        // Correct order matches.
        let q = "proc p4[\"%/usr/bin/curl%\"] connect ip i1 as e1 \
                 proc p1[\"%/bin/tar%\"] read file f1[\"%/etc/passwd%\"] as e2 \
                 with e2 before e1 return p4, i1";
        let (r, _) = engine.execute_text(q, ExecMode::Scheduled).unwrap();
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    fn short_circuit_on_empty_pattern() {
        let engine = fig2_engine();
        let q = "proc p[\"%/bin/nonexistent%\"] read file f as e1 \
                 proc p2 read file f2 as e2 return p, f";
        let (r, stats) = engine.execute_text(q, ExecMode::Scheduled).unwrap();
        assert!(r.rows.is_empty());
        assert!(stats.short_circuited);
        // One entity-candidate seed + the first (empty) pattern; the second
        // pattern is skipped.
        let pattern_queries = stats
            .query_texts
            .iter()
            .filter(|t| t.contains("FROM processes") && t.contains("events"))
            .count();
        assert!(pattern_queries <= 1, "second pattern skipped: {stats:?}");
    }

    #[test]
    fn variable_length_path_bridges_intermediate_steps() {
        let engine = fig2_engine();
        // passwd's content flows to the C2 via tar→file→bzip2→...→curl→ip.
        // A var-length path from the tar process reaches upload.tar.bz2 in
        // 2 hops? No: proc→file edges only go one hop; information flow
        // through files needs file→proc edges which system events do not
        // have (reads point proc→file). Instead test proc p ~>(1~1)[write]:
        let q = "proc p[\"%/bin/tar%\"] ~>(1~1)[write] file f return p, f";
        let (r, _) = engine.execute_text(q, ExecMode::Scheduled).unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][1], "/tmp/upload.tar");
    }

    #[test]
    fn attribute_relationship_joins() {
        let engine = fig2_engine();
        // Same user wrote upload.tar and read it (root): join on user attr.
        let q = "proc pa write file f[\"%/tmp/upload.tar%\"] as e1 \
                 proc pb read file f as e2 \
                 with pa.user = pb.user return pa, pb";
        let (r, _) = engine.execute_text(q, ExecMode::Scheduled).unwrap();
        assert!(!r.rows.is_empty());
        // Disjoint users filter everything out.
        let q2 = "proc pa write file f[\"%/tmp/upload.tar%\"] as e1 \
                  proc pb read file f as e2 \
                  with pa.user != pb.user return pa, pb";
        let (r2, _) = engine.execute_text(q2, ExecMode::Scheduled).unwrap();
        assert!(r2.rows.is_empty());
    }

    #[test]
    fn event_attribute_return() {
        let engine = fig2_engine();
        let q = "proc p[\"%/bin/tar%\"] read file f[\"%/etc/passwd%\"] as e1 \
                 return e1.amount, e1.optype, p";
        let (r, _) = engine.execute_text(q, ExecMode::Scheduled).unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], "4096");
        assert_eq!(r.rows[0][1], "read");
    }

    #[test]
    fn windows_restrict_results() {
        let engine = fig2_engine();
        let q = "proc p[\"%/bin/tar%\"] read file f[\"%/etc/passwd%\"] as e1 before 10 return p, f";
        let (r, _) = engine.execute_text(q, ExecMode::Scheduled).unwrap();
        assert!(r.rows.is_empty(), "window before epoch+10ns excludes all");
        let q = "proc p[\"%/bin/tar%\"] read file f[\"%/etc/passwd%\"] as e1 after 10 return p, f";
        let (r, _) = engine.execute_text(q, ExecMode::Scheduled).unwrap();
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    fn propagation_shrinks_later_queries() {
        let engine = fig2_engine();
        let (_, stats) = engine
            .execute_text(raptor_tbql::parser::FIG2_QUERY, ExecMode::Scheduled)
            .unwrap();
        // Later data queries carry IN filters from earlier ones.
        let with_in = stats.query_texts.iter().filter(|t| t.contains(".id IN (")).count();
        assert!(with_in >= 4, "expected propagated IN filters: {:#?}", stats.query_texts);
    }
}
