//! Query execution.
//!
//! Three execution paths, matching the four query variants of Table VIII:
//!
//! * [`ExecMode::Scheduled`] — ThreatRaptor's plan: compile each pattern to
//!   a small *typed* data request, execute in pruning-score order with
//!   `IN`-filter propagation through the [`StorageBackend`] trait, then join
//!   per-pattern matches on `i64` entity ids, apply `with`-clause
//!   constraints, and project. (Variants (a) and (c): event patterns run on
//!   the relational store, length-1 path patterns on the graph store.) No
//!   SQL/Cypher text is built or parsed anywhere on this path — values stay
//!   typed in a [`ResultBatch`] until the final rendering.
//! * [`ExecMode::GiantSql`] — one giant compiled SQL statement (variant
//!   (b)), still going through the SQL parser on purpose: it is the
//!   baseline the paper measures against.
//! * [`ExecMode::GiantCypher`] — one giant compiled Cypher statement
//!   (variant (d)), ditto.
//!
//! All three return the same [`ResultTable`] for the same query — the
//! backend-equivalence integration tests assert it. The seed's stringly
//! scheduled pipeline is preserved as
//! [`Engine::execute_scheduled_via_text`] so benchmarks can measure the
//! typed plane against it.

use raptor_common::error::{Error, Result};
use raptor_common::hash::{FxHashMap, FxHashSet};
use raptor_common::obs;
use raptor_common::pool::Pool;
use raptor_common::time::Duration;
use raptor_graphstore::cypher::{exec as gexec, parse_cypher};
use raptor_storage::{
    AttrSource, BackendStats, PatternMatches, ResultBatch, StorageBackend, Value as SVal,
};
use raptor_tbql::analyze::AnalyzedQuery;
use raptor_tbql::{analyze, parse_tbql, CmpOp, PatternOp, RelClause, TemporalOp};

use crate::compile::{
    class_for_type, cypher_for_path_pattern, entity_candidate_request, entity_candidate_sql,
    event_pattern_request, giant_cypher, giant_sql, path_pattern_request, sql_for_event_pattern,
    CompileCtx, Propagation,
};
use crate::estimate::{estimate_event_pattern, estimate_path_pattern, PatternEstimate};
use crate::load::LoadedStores;
use crate::schedule::{dependency_chains, execution_order, pruning_score, SchedulerMode};

/// Execution strategy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExecMode {
    Scheduled,
    GiantSql,
    GiantCypher,
}

/// How the scheduled executor talks to the stores.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum DataPath {
    /// Typed requests through the [`StorageBackend`] trait (the default).
    Typed,
    /// The seed pipeline: render SQL/Cypher text, re-parse it in the store,
    /// re-parse stringly rows into ids. Kept for benchmarks/regression.
    Text,
}

/// What one issued data query was (plan observability).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QueryKind {
    /// Entity-candidate seeding lookup.
    Seed,
    EventPattern,
    PathPattern,
    /// A giant whole-query baseline statement.
    Giant,
}

/// One issued data query, in execution order.
#[derive(Clone, Debug)]
pub struct QueryInfo {
    /// `"relational"` or `"graph"`.
    pub backend: &'static str,
    pub kind: QueryKind,
    /// The pattern or entity this query served.
    pub label: String,
    /// Number of propagated `IN` id-lists attached to the request.
    pub in_lists: usize,
    /// The query text — only for paths that really go through a parser
    /// (giant baselines and the text-compat scheduled path).
    pub text: Option<String>,
    /// Rows (matches / candidates) this query returned.
    pub rows: Option<usize>,
    /// Wall time of the backend call, in nanoseconds. Timing only — never
    /// part of any determinism contract.
    pub wall_ns: u64,
    /// Backend counters attributable to this query alone (the difference of
    /// [`EngineStats::backend`] across the call): access path taken
    /// (`index_scans` / `full_scans`), rows scanned, segments
    /// scanned/pruned, edges traversed. `EXPLAIN ANALYZE` renders these.
    pub delta: BackendStats,
}

/// Engine-level execution statistics, unified across both backends.
#[derive(Clone, Debug, Default)]
pub struct EngineStats {
    /// Number of data queries issued.
    pub data_queries: usize,
    /// SQL/Cypher texts parsed on this execution. Zero in scheduled mode —
    /// asserted by tests; the giant baselines and the text-compat path
    /// count here.
    pub text_parses: usize,
    /// Some executed pattern matched nothing: the overall result is empty
    /// and the pattern's *dependency chain* stopped early. Independent
    /// chains still complete — per-chain short-circuiting is what keeps
    /// concurrent chain execution deterministic (see
    /// [`crate::schedule::dependency_chains`]).
    pub short_circuited: bool,
    /// Unified backend counters (scans, tuples/bindings, index usage).
    pub backend: BackendStats,
    /// The issued data queries, in execution order.
    pub queries: Vec<QueryInfo>,
    /// The scheduler that actually ordered this execution (`None` for the
    /// giant baseline modes and for caller-forced orders via
    /// [`Engine::execute_with_order`]). A `CostBased` request downgrades to
    /// `Syntactic` here when the stores carry no statistics.
    pub scheduler: Option<SchedulerMode>,
    /// Pattern execution order used (indices into the query's patterns).
    pub execution_order: Vec<usize>,
    /// Per-pattern cost-model records (estimated vs actual rows, syntactic
    /// score), index-aligned with the query's patterns. Estimated rows are
    /// populated exactly when the cost-based scheduler ran; actual rows for
    /// every pattern that executed — so Q-error is observable per query.
    pub estimates: Vec<PatternEstimate>,
    /// Heap `String`s materialized from interned symbols. Incremented in
    /// exactly one place — [`ResultTable::from_batch_counted`], the render
    /// edge — and equals rows × string-columns of the rendered result.
    /// Everything inside the scheduled/streaming paths operates on symbols,
    /// so the counter stays 0 until the edge (asserted by tests).
    pub strings_materialized: usize,
}

impl EngineStats {
    pub(crate) fn record(
        &mut self,
        backend: &'static str,
        kind: QueryKind,
        label: &str,
        in_lists: usize,
    ) {
        self.data_queries += 1;
        self.queries.push(QueryInfo {
            backend,
            kind,
            label: label.to_string(),
            in_lists,
            text: None,
            rows: None,
            wall_ns: 0,
            delta: BackendStats::default(),
        });
    }

    fn record_text(&mut self, backend: &'static str, kind: QueryKind, label: &str, text: String) {
        let in_lists = text.matches(".id IN").count();
        self.data_queries += 1;
        self.queries.push(QueryInfo {
            backend,
            kind,
            label: label.to_string(),
            in_lists,
            text: Some(text),
            rows: None,
            wall_ns: 0,
            delta: BackendStats::default(),
        });
    }

    /// Attaches the observability payload to the most recently recorded
    /// query: its row count, wall time, and the backend-counter delta it
    /// alone caused (`before` is the [`EngineStats::backend`] snapshot taken
    /// just before the call).
    fn finish_last(&mut self, rows: usize, before: BackendStats, wall_ns: u64) {
        if let Some(q) = self.queries.last_mut() {
            q.rows = Some(rows);
            q.wall_ns = wall_ns;
            q.delta = self.backend.delta_since(&before);
        }
    }
}

/// A query result rendered for display: projected column names and string
/// rows. Produced once, at the edge, from the typed [`ResultBatch`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResultTable {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl ResultTable {
    /// Renders a typed batch, counting the materialized strings into
    /// `stats.strings_materialized` — the **only** site that increments it.
    pub fn from_batch_counted(batch: &ResultBatch, stats: &mut EngineStats) -> Self {
        stats.strings_materialized += batch.str_cells();
        ResultTable { columns: batch.columns.clone(), rows: batch.rendered_rows() }
    }

    /// Renders a typed batch (edge accounting discarded).
    pub fn from_batch(batch: &ResultBatch) -> Self {
        Self::from_batch_counted(batch, &mut EngineStats::default())
    }

    /// Rows as a sorted set (order-insensitive comparison in tests).
    pub fn sorted_rows(&self) -> Vec<Vec<String>> {
        let mut rows = self.rows.clone();
        rows.sort();
        rows
    }
}

/// One pattern match: subject/object entity ids plus (for patterns with a
/// final hop) the event id and its timestamps.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub(crate) struct Match {
    pub(crate) subj: i64,
    pub(crate) obj: i64,
    pub(crate) evt: i64,
    pub(crate) start: i64,
    pub(crate) end: i64,
}

/// One dependency chain's execution outcome: per-pattern matches (chain
/// order) plus the chain-local stats, absorbed into the query's
/// [`EngineStats`] in chain order.
struct ChainRun {
    results: Vec<(usize, Vec<Match>)>,
    stats: EngineStats,
}

/// Per-pattern cost records with only the syntactic scores filled in —
/// the starting point of [`Engine::plan_order`] and the whole record for
/// caller-forced orders.
fn base_estimates(aq: &AnalyzedQuery) -> Vec<PatternEstimate> {
    aq.patterns
        .iter()
        .map(|p| PatternEstimate {
            pattern: p.id.clone(),
            is_path: p.is_path(),
            estimated_rows: None,
            syntactic_score: pruning_score(aq, p),
            actual_rows: None,
        })
        .collect()
}

pub(crate) fn matches_to_rows(m: &PatternMatches) -> Vec<Match> {
    (0..m.len())
        .map(|i| Match {
            subj: m.subj[i],
            obj: m.obj[i],
            evt: m.evt[i],
            start: m.start[i],
            end: m.end[i],
        })
        .collect()
}

/// The query engine over a pair of loaded stores.
pub struct Engine {
    pub stores: LoadedStores,
    /// Hop cap for unbounded variable-length paths.
    pub max_hops: u32,
    /// Default scheduler for `ExecMode::Scheduled` executions (cost-based;
    /// see [`crate::schedule`]). Per-call overrides go through
    /// [`Engine::execute_scheduled_as`].
    pub scheduler: SchedulerMode,
    /// Worker pool for executing independent dependency chains
    /// concurrently (patterns sharing no entity variable — see
    /// [`dependency_chains`]). One thread ⇒ the exact sequential code path.
    pool: Pool,
}

impl Engine {
    pub fn new(stores: LoadedStores) -> Self {
        Engine {
            stores,
            max_hops: gexec::DEFAULT_MAX_HOPS,
            scheduler: SchedulerMode::default(),
            pool: Pool::default(),
        }
    }

    /// The engine-level worker pool (independent dependency chains and
    /// per-epoch standing-query evaluation run on it).
    pub fn pool(&self) -> Pool {
        self.pool
    }

    /// Pins the worker count across the whole execution plane: the engine's
    /// chain/standing-query pool *and* both stores' scan/join/traversal
    /// pools. `1` takes the strictly sequential code paths everywhere.
    pub fn set_threads(&mut self, threads: usize) {
        self.pool = Pool::with_threads(threads);
        self.stores.rel.set_threads(threads);
        self.stores.graph.set_threads(threads);
    }

    /// Re-segments the relational store's columnar tables to `rows`-row
    /// segments (zone maps rebuild in one pass; results are byte-identical
    /// at every capacity). The graph store has no segments.
    pub fn set_segment_rows(&mut self, rows: usize) {
        self.stores.rel.set_segment_rows(rows);
    }

    pub(crate) fn rel(&self) -> &dyn StorageBackend {
        &self.stores.rel
    }

    pub(crate) fn graph(&self) -> &dyn StorageBackend {
        &self.stores.graph
    }

    /// Parses, analyzes and executes a TBQL query text.
    ///
    /// This is also the slow-query seam: when the query's wall time crosses
    /// the `RAPTOR_SLOW_QUERY_MS` threshold, its `EXPLAIN ANALYZE` tree is
    /// recorded into the global [`obs::slow_log`].
    pub fn execute_text(&self, tbql: &str, mode: ExecMode) -> Result<(ResultTable, EngineStats)> {
        let t0 = std::time::Instant::now();
        let aq = {
            let mut sp = obs::span("engine.compile");
            let q = parse_tbql(tbql)?;
            let aq = analyze(&q)?;
            sp.attr("patterns", aq.patterns.len() as u64);
            aq
        };
        let (table, stats) = self.execute(&aq, mode)?;
        let wall_ns = t0.elapsed().as_nanos() as u64;
        if obs::slow_log().threshold_ns().is_some_and(|thr| wall_ns >= thr) {
            let report = crate::explain::render_analyze(
                &aq,
                &stats,
                Some(wall_ns),
                table.rows.len(),
                crate::explain::Redact::Full,
            );
            obs::slow_log().record(tbql, wall_ns, &report);
        }
        Ok((table, stats))
    }

    /// Executes an analyzed query, rendering the result for display.
    pub fn execute(
        &self,
        aq: &AnalyzedQuery,
        mode: ExecMode,
    ) -> Result<(ResultTable, EngineStats)> {
        let (batch, mut stats) = self.execute_batch(aq, mode)?;
        let mut sp = obs::span("engine.render");
        let table = ResultTable::from_batch_counted(&batch, &mut stats);
        sp.attr("rows", table.rows.len() as u64);
        sp.attr("strings", stats.strings_materialized as u64);
        Ok((table, stats))
    }

    /// Executes an analyzed query, returning the typed result batch.
    pub fn execute_batch(
        &self,
        aq: &AnalyzedQuery,
        mode: ExecMode,
    ) -> Result<(ResultBatch, EngineStats)> {
        let mut sp = obs::span("engine.execute");
        sp.label(match mode {
            ExecMode::Scheduled => "scheduled",
            ExecMode::GiantSql => "giant_sql",
            ExecMode::GiantCypher => "giant_cypher",
        });
        let t0 = std::time::Instant::now();
        let r = match mode {
            ExecMode::Scheduled => self.execute_scheduled(aq, DataPath::Typed),
            ExecMode::GiantSql => self.execute_giant_sql(aq),
            ExecMode::GiantCypher => self.execute_giant_cypher(aq),
        };
        if let Ok((batch, stats)) = &r {
            sp.attr("rows", batch.n_rows() as u64);
            let m = obs::metrics();
            m.counter_add("raptor_queries_total", 1);
            m.observe_ns("raptor_query_latency_ns", t0.elapsed().as_nanos() as u64);
            m.counter_add("raptor_data_queries_total", stats.data_queries as u64);
            m.counter_add("raptor_rows_scanned_total", stats.backend.items_scanned as u64);
            m.counter_add("raptor_result_rows_total", batch.n_rows() as u64);
        }
        r
    }

    /// The seed's stringly scheduled pipeline (compile to SQL/Cypher text,
    /// re-parse in the store, re-parse rows). Semantics match
    /// [`ExecMode::Scheduled`]; kept callable for benchmarks and the
    /// typed-vs-text regression test.
    pub fn execute_scheduled_via_text(
        &self,
        aq: &AnalyzedQuery,
    ) -> Result<(ResultTable, EngineStats)> {
        let (batch, mut stats) = self.execute_scheduled(aq, DataPath::Text)?;
        let table = ResultTable::from_batch_counted(&batch, &mut stats);
        Ok((table, stats))
    }

    pub(crate) fn ctx<'a>(&self, aq: &'a AnalyzedQuery) -> CompileCtx<'a> {
        CompileCtx { aq, now_ns: self.stores.now_ns, dict: self.stores.dict.clone() }
    }

    /// Runs a SQL text through the relational store's parser (giant/baseline
    /// paths only — the scheduled executor never calls this).
    fn query_sql_text(
        &self,
        sql: &str,
        stats: &mut EngineStats,
    ) -> Result<raptor_relstore::QueryResult> {
        stats.text_parses += 1;
        let r = self.stores.rel.query(sql)?;
        stats.backend.items_scanned += r.stats.rows_scanned;
        stats.backend.items_built += r.stats.tuples_built;
        stats.backend.index_scans += r.stats.index_scans;
        stats.backend.full_scans += r.stats.full_scans;
        stats.backend.segments_scanned += r.stats.segments_scanned;
        stats.backend.segments_pruned += r.stats.segments_pruned;
        stats.backend.text_parses += 1;
        stats.backend.data_queries += 1;
        Ok(r)
    }

    /// Runs a Cypher text through the graph store's parser (ditto).
    fn query_cypher_text(&self, cy: &str, stats: &mut EngineStats) -> Result<gexec::CypherResult> {
        stats.text_parses += 1;
        let parsed = parse_cypher(cy)?;
        let r = gexec::execute(&self.stores.graph, &parsed, self.max_hops)?;
        stats.backend.items_scanned += r.stats.nodes_scanned;
        stats.backend.items_built += r.stats.bindings_built;
        stats.backend.edges_traversed += r.stats.edges_traversed;
        stats.backend.text_parses += 1;
        stats.backend.data_queries += 1;
        Ok(r)
    }

    /// Executes each pattern's data query *independently* (no propagation,
    /// no cross-pattern join) and returns the matched event ids per pattern.
    /// This is the hunting-evaluation view: every pattern contributes its
    /// matches even when another pattern (e.g. an excessive synthesized one)
    /// matches nothing. Patterns without a final hop contribute no events.
    pub fn pattern_event_matches(&self, aq: &AnalyzedQuery) -> Result<Vec<(String, Vec<i64>)>> {
        let ctx = self.ctx(aq);
        let mut empty = Propagation::default();
        let mut stats = EngineStats::default();
        self.seed_entity_candidates(aq, &mut empty, &mut stats, DataPath::Typed)?;
        let mut out = Vec::with_capacity(aq.patterns.len());
        for p in &aq.patterns {
            let m = if p.is_path() {
                let req = path_pattern_request(&ctx, p, &empty, self.max_hops)?;
                self.graph().match_path_pattern(&req, &mut stats.backend)?
            } else {
                let req = event_pattern_request(&ctx, p, &empty)?;
                self.rel().match_event_pattern(&req, &mut stats.backend)?
            };
            let mut ids: Vec<i64> = if m.has_event {
                m.evt.iter().copied().filter(|&e| e >= 0).collect()
            } else {
                Vec::new()
            };
            ids.sort_unstable();
            ids.dedup();
            out.push((p.id.clone(), ids));
        }
        Ok(out)
    }

    fn execute_giant_sql(&self, aq: &AnalyzedQuery) -> Result<(ResultBatch, EngineStats)> {
        let sql = giant_sql(&self.ctx(aq))?;
        let mut stats = EngineStats::default();
        let t0 = std::time::Instant::now();
        let r = self.query_sql_text(&sql, &mut stats)?;
        stats.record_text("relational", QueryKind::Giant, "giant_sql", sql);
        stats.finish_last(r.n_rows(), BackendStats::default(), t0.elapsed().as_nanos() as u64);
        // Shared plane: the store's result columns already *are* engine
        // value columns — the batch wraps them without touching a row.
        Ok((ResultBatch::new(r.columns, r.cols, self.stores.dict.clone()), stats))
    }

    fn execute_giant_cypher(&self, aq: &AnalyzedQuery) -> Result<(ResultBatch, EngineStats)> {
        let cy = giant_cypher(&self.ctx(aq))?;
        let mut stats = EngineStats::default();
        let t0 = std::time::Instant::now();
        let r = self.query_cypher_text(&cy, &mut stats)?;
        stats.record_text("graph", QueryKind::Giant, "giant_cypher", cy);
        stats.finish_last(r.rows.len(), BackendStats::default(), t0.elapsed().as_nanos() as u64);
        let rows: Vec<Vec<SVal>> =
            r.rows.into_iter().map(|row| row.into_iter().map(gval_to_sval).collect()).collect();
        Ok((ResultBatch::from_rows(r.columns, rows, self.stores.dict.clone()), stats))
    }

    /// Seeds the propagation table by resolving every filtered entity to its
    /// candidate ids with one small indexed query per entity — the "parts"
    /// with the highest pruning power always execute first.
    pub(crate) fn seed_entity_candidates(
        &self,
        aq: &AnalyzedQuery,
        prop: &mut Propagation,
        stats: &mut EngineStats,
        path: DataPath,
    ) -> Result<()> {
        for id in &aq.entity_order {
            let e = &aq.entities[id];
            let Some(filter) = &e.filter else { continue };
            let mut sp = obs::span("engine.seed");
            sp.label(id);
            let before = stats.backend;
            let t0 = std::time::Instant::now();
            let ids = match path {
                DataPath::Typed => {
                    let (class, pred) = entity_candidate_request(e.ty, filter, &self.stores.dict);
                    let ids = self.rel().entity_candidates(class, &pred, &mut stats.backend)?;
                    stats.record("relational", QueryKind::Seed, id, 0);
                    ids
                }
                DataPath::Text => {
                    let sql = entity_candidate_sql(id, e.ty, filter);
                    let r = self.query_sql_text(&sql, stats)?;
                    stats.record_text("relational", QueryKind::Seed, id, sql);
                    // The text path bypasses `entity_candidates`, so it
                    // canonicalizes here to meet `Propagation::set`'s
                    // sorted-distinct contract.
                    let mut ids: Vec<i64> =
                        (0..r.n_rows()).filter_map(|i| r.cols[0].get(i).as_int()).collect();
                    ids.sort_unstable();
                    ids.dedup();
                    ids
                }
            };
            stats.finish_last(ids.len(), before, t0.elapsed().as_nanos() as u64);
            sp.attr("candidates", ids.len() as u64);
            prop.set(id.clone(), ids);
        }
        Ok(())
    }

    /// Runs one pattern's data query over the chosen data path, recording
    /// an `engine.pattern` span and the query's observability payload
    /// (rows, wall time, backend-counter delta) into the last `QueryInfo`.
    fn match_pattern(
        &self,
        ctx: &CompileCtx<'_>,
        p: &raptor_tbql::analyze::APattern,
        prop: &Propagation,
        stats: &mut EngineStats,
        path: DataPath,
    ) -> Result<Vec<Match>> {
        let mut sp = obs::span("engine.pattern");
        sp.label(&p.id);
        let before = stats.backend;
        let t0 = std::time::Instant::now();
        let rows = self.match_pattern_inner(ctx, p, prop, stats, path)?;
        stats.finish_last(rows.len(), before, t0.elapsed().as_nanos() as u64);
        if let Some(q) = stats.queries.last() {
            sp.attr("rows", rows.len() as u64);
            sp.attr("in_lists", q.in_lists as u64);
            sp.attr("scanned", q.delta.items_scanned as u64);
            sp.attr("pruned", q.delta.segments_pruned as u64);
        }
        Ok(rows)
    }

    fn match_pattern_inner(
        &self,
        ctx: &CompileCtx<'_>,
        p: &raptor_tbql::analyze::APattern,
        prop: &Propagation,
        stats: &mut EngineStats,
        path: DataPath,
    ) -> Result<Vec<Match>> {
        match (path, p.is_path()) {
            (DataPath::Typed, true) => {
                let req = path_pattern_request(ctx, p, prop, self.max_hops)?;
                let in_lists =
                    req.subject.id_in.is_some() as usize + req.object.id_in.is_some() as usize;
                let m = self.graph().match_path_pattern(&req, &mut stats.backend)?;
                stats.record("graph", QueryKind::PathPattern, &p.id, in_lists);
                Ok(matches_to_rows(&m))
            }
            (DataPath::Typed, false) => {
                let req = event_pattern_request(ctx, p, prop)?;
                let in_lists =
                    req.subject.id_in.is_some() as usize + req.object.id_in.is_some() as usize;
                let m = self.rel().match_event_pattern(&req, &mut stats.backend)?;
                stats.record("relational", QueryKind::EventPattern, &p.id, in_lists);
                Ok(matches_to_rows(&m))
            }
            (DataPath::Text, true) => {
                let cy = cypher_for_path_pattern(ctx, p, prop)?;
                let r = self.query_cypher_text(&cy, stats)?;
                stats.record_text("graph", QueryKind::PathPattern, &p.id, cy);
                Ok(r.rows
                    .iter()
                    .map(|row| {
                        let subj = row[0].as_int().unwrap_or(-1);
                        let obj = row[1].as_int().unwrap_or(-1);
                        if row.len() >= 5 {
                            Match {
                                subj,
                                obj,
                                evt: row[2].as_int().unwrap_or(-1),
                                start: row[3].as_int().unwrap_or(0),
                                end: row[4].as_int().unwrap_or(0),
                            }
                        } else {
                            Match { subj, obj, evt: -1, start: 0, end: 0 }
                        }
                    })
                    .collect())
            }
            (DataPath::Text, false) => {
                let sql = sql_for_event_pattern(ctx, p, prop)?;
                let r = self.query_sql_text(&sql, stats)?;
                stats.record_text("relational", QueryKind::EventPattern, &p.id, sql);
                Ok((0..r.n_rows())
                    .map(|i| Match {
                        subj: r.cols[0].get(i).as_int().unwrap_or(-1),
                        obj: r.cols[1].get(i).as_int().unwrap_or(-1),
                        evt: r.cols[2].get(i).as_int().unwrap_or(-1),
                        start: r.cols[3].get(i).as_int().unwrap_or(0),
                        end: r.cols[4].get(i).as_int().unwrap_or(0),
                    })
                    .collect())
            }
        }
    }

    /// Computes the pattern execution order and the per-pattern cost
    /// records. Runs *after* entity-candidate seeding, so cost estimates
    /// see the exact seeded candidate counts (execution-result-constrained
    /// ordering); the syntactic score is the fallback whenever the stores
    /// carry no statistics or the engine is pinned to `Syntactic`.
    pub(crate) fn plan_order(
        &self,
        ctx: &CompileCtx<'_>,
        aq: &AnalyzedQuery,
        prop: &Propagation,
        mode: SchedulerMode,
    ) -> Result<(Vec<usize>, Vec<PatternEstimate>, SchedulerMode)> {
        let mut sp = obs::span("engine.plan");
        sp.attr("patterns", aq.patterns.len() as u64);
        let mut estimates = base_estimates(aq);
        let stats_ready = self.rel().stats().table("events").is_some_and(|t| t.rows() > 0);
        let used = if mode == SchedulerMode::CostBased && stats_ready {
            SchedulerMode::CostBased
        } else {
            SchedulerMode::Syntactic
        };
        let order = match used {
            SchedulerMode::CostBased => {
                let mut base = Vec::with_capacity(aq.patterns.len());
                let mut sides: Vec<[(String, f64); 2]> = Vec::with_capacity(aq.patterns.len());
                for p in &aq.patterns {
                    let class_rows = |v: &str| -> f64 {
                        let rows = aq
                            .entities
                            .get(v)
                            .map(|e| class_for_type(e.ty))
                            .and_then(|c| self.rel().stats().table(c.table_name()))
                            .map_or(0, |t| t.rows());
                        rows.max(1) as f64
                    };
                    let est = if p.is_path() {
                        let req = path_pattern_request(ctx, p, prop, self.max_hops)?;
                        estimate_path_pattern(&req, self.graph().stats())
                    } else {
                        let req = event_pattern_request(ctx, p, prop)?;
                        estimate_event_pattern(&req, self.rel().stats())
                    };
                    base.push(est);
                    sides.push([
                        (p.subject.clone(), class_rows(&p.subject)),
                        (p.object.clone(), class_rows(&p.object)),
                    ]);
                }
                // Join-aware greedy ordering: repeatedly pick the cheapest
                // remaining pattern, then *condition* every unpicked
                // pattern sharing one of its variables — an executed
                // pattern bounds the shared variable's distinct candidates
                // by its own output, shrinking the partner's effective
                // entity fraction exactly like `IN`-propagation will at run
                // time. Conditioned estimates are what Q-error measures.
                let mut bound: FxHashMap<&str, f64> = FxHashMap::default();
                let conditioned = |i: usize, bound: &FxHashMap<&str, f64>| -> f64 {
                    let mut est = base[i];
                    let [(sv, sr), (ov, or)] = &sides[i];
                    if let Some(b) = bound.get(sv.as_str()) {
                        est *= (b / sr).min(1.0);
                    }
                    // A self-loop pattern's one variable conditions once.
                    if ov != sv {
                        if let Some(b) = bound.get(ov.as_str()) {
                            est *= (b / or).min(1.0);
                        }
                    }
                    est
                };
                let mut remaining: Vec<usize> = (0..aq.patterns.len()).collect();
                let mut order = Vec::with_capacity(remaining.len());
                while !remaining.is_empty() {
                    let (pos, _) = remaining
                        .iter()
                        .enumerate()
                        .min_by(|&(_, &a), &(_, &b)| {
                            let (pa, pb) = (&aq.patterns[a], &aq.patterns[b]);
                            conditioned(a, &bound)
                                .total_cmp(&conditioned(b, &bound))
                                .then(pruning_score(aq, pb).cmp(&pruning_score(aq, pa)))
                                .then(pa.is_path().cmp(&pb.is_path()))
                                .then(a.cmp(&b))
                        })
                        .expect("non-empty");
                    let i = remaining.swap_remove(pos);
                    let est = conditioned(i, &bound);
                    estimates[i].estimated_rows = Some(est);
                    for (v, _) in &sides[i] {
                        let b = bound.entry(v.as_str()).or_insert(f64::INFINITY);
                        *b = b.min(est);
                    }
                    order.push(i);
                }
                order
            }
            SchedulerMode::Syntactic => execution_order(aq),
        };
        sp.label(match used {
            SchedulerMode::CostBased => "cost_based",
            SchedulerMode::Syntactic => "syntactic",
        });
        Ok((order, estimates, used))
    }

    fn execute_scheduled(
        &self,
        aq: &AnalyzedQuery,
        path: DataPath,
    ) -> Result<(ResultBatch, EngineStats)> {
        self.run_scheduled(aq, path, self.scheduler, None)
    }

    /// Scheduled execution under an explicit scheduler mode (benchmarks and
    /// ablations compare modes on an engine they cannot mutate).
    pub fn execute_scheduled_as(
        &self,
        aq: &AnalyzedQuery,
        mode: SchedulerMode,
    ) -> Result<(ResultTable, EngineStats)> {
        let (batch, mut stats) = self.run_scheduled(aq, DataPath::Typed, mode, None)?;
        let table = ResultTable::from_batch_counted(&batch, &mut stats);
        Ok((table, stats))
    }

    /// Scheduled execution with a caller-forced pattern execution order
    /// (must be a permutation of the pattern indices). Exists so the
    /// order-invariance property — any order yields identical results — is
    /// testable from outside the crate.
    pub fn execute_with_order(
        &self,
        aq: &AnalyzedQuery,
        order: &[usize],
    ) -> Result<(ResultTable, EngineStats)> {
        let mut seen = vec![false; aq.patterns.len()];
        if order.len() != aq.patterns.len()
            || !order.iter().all(|&i| i < seen.len() && !std::mem::replace(&mut seen[i], true))
        {
            return Err(Error::semantic(format!(
                "execution order {order:?} is not a permutation of 0..{}",
                aq.patterns.len()
            )));
        }
        let (batch, mut stats) =
            self.run_scheduled(aq, DataPath::Typed, self.scheduler, Some(order))?;
        let table = ResultTable::from_batch_counted(&batch, &mut stats);
        Ok((table, stats))
    }

    fn run_scheduled(
        &self,
        aq: &AnalyzedQuery,
        path: DataPath,
        mode: SchedulerMode,
        forced_order: Option<&[usize]>,
    ) -> Result<(ResultBatch, EngineStats)> {
        let ctx = self.ctx(aq);
        let mut prop = Propagation::default();
        let mut stats = EngineStats::default();
        self.seed_entity_candidates(aq, &mut prop, &mut stats, path)?;
        // A caller-forced order bypasses the planner entirely: no estimates
        // are computed and no scheduler is credited with the order.
        let (order, estimates, used) = match forced_order {
            Some(o) => (o.to_vec(), base_estimates(aq), None),
            None => {
                let (order, estimates, used) = self.plan_order(&ctx, aq, &prop, mode)?;
                (order, estimates, Some(used))
            }
        };
        stats.scheduler = used;
        stats.execution_order = order.clone();
        stats.estimates = estimates;
        let mut matches: Vec<Option<Vec<Match>>> = vec![None; aq.patterns.len()];

        // Patterns sharing no entity variable never observe each other's
        // propagated `IN` sets, so the order decomposes into independent
        // dependency chains: chains execute concurrently on the pool (each
        // over its own snapshot of the seeded candidate sets), the given
        // order is preserved within each chain, and per-chain stats absorb
        // in chain order — results and deterministic counters are identical
        // at every thread count. The single-chain case (most queries) runs
        // inline with no snapshot.
        let chains = dependency_chains(aq, &order);
        let chain_runs: Vec<ChainRun> = if chains.len() == 1 {
            vec![self.run_chain(&ctx, aq, &chains[0], prop, path)?]
        } else if self.pool.is_sequential() {
            let mut runs = Vec::with_capacity(chains.len());
            for chain in &chains {
                runs.push(self.run_chain(&ctx, aq, chain, prop.clone(), path)?);
            }
            runs
        } else {
            let ctx = &ctx;
            let prop = &prop;
            let tasks: Vec<_> = chains
                .iter()
                .map(|chain| move || self.run_chain(ctx, aq, chain, prop.clone(), path))
                .collect();
            self.pool.run(tasks).into_iter().collect::<Result<Vec<_>>>()?
        };
        for run in chain_runs {
            stats.data_queries += run.stats.data_queries;
            stats.text_parses += run.stats.text_parses;
            stats.short_circuited |= run.stats.short_circuited;
            stats.backend.absorb(&run.stats.backend);
            stats.queries.extend(run.stats.queries);
            for (idx, rows) in run.results {
                stats.estimates[idx].actual_rows = Some(rows.len());
                matches[idx] = Some(rows);
            }
        }

        if stats.short_circuited {
            let columns: Vec<String> =
                aq.ret.iter().map(|r| format!("{}.{}", r.base, r.attr)).collect();
            return Ok((
                ResultBatch::from_rows(columns, Vec::new(), self.stores.dict.clone()),
                stats,
            ));
        }

        let pattern_rows: Vec<&Vec<Match>> =
            matches.iter().map(|m| m.as_ref().expect("all executed")).collect();
        let batch = self.join_project(aq, &pattern_rows, &mut stats, path)?;
        Ok((batch, stats))
    }

    /// Executes one dependency chain's patterns in order against its own
    /// propagation snapshot, intersecting each pattern's entity ids into
    /// the snapshot for the chain's later patterns. An empty pattern
    /// short-circuits **its chain** (nothing later in the chain can match
    /// once an `IN` set is empty, and the whole query's result is already
    /// known to be empty); other chains are unaffected — which is exactly
    /// what makes concurrent chain execution deterministic: what executes
    /// never depends on cross-chain timing.
    fn run_chain(
        &self,
        ctx: &CompileCtx<'_>,
        aq: &AnalyzedQuery,
        chain: &[usize],
        mut prop: Propagation,
        path: DataPath,
    ) -> Result<ChainRun> {
        let mut sp = obs::span("engine.chain");
        if let Some(&first) = chain.first() {
            sp.label(&aq.patterns[first].id);
        }
        sp.attr("patterns", chain.len() as u64);
        let mut stats = EngineStats::default();
        let mut results = Vec::with_capacity(chain.len());
        for &idx in chain {
            let p = &aq.patterns[idx];
            let rows = self.match_pattern(ctx, p, &prop, &mut stats, path)?;
            // Propagate distinct entity ids into later data queries.
            for (var, is_subj) in [(&p.subject, true), (&p.object, false)] {
                let ids: Vec<i64> =
                    rows.iter().map(|m| if is_subj { m.subj } else { m.obj }).collect();
                prop.intersect(var, ids);
            }
            let empty = rows.is_empty();
            results.push((idx, rows));
            if empty {
                stats.short_circuited = true;
                break;
            }
        }
        Ok(ChainRun { results, stats })
    }

    /// Joins per-pattern match sets on shared entity variables, applies
    /// `with`-clause constraints, and projects the typed result batch.
    /// Shared by one-shot scheduled execution and the standing-query
    /// re-evaluation path (which feeds *accumulated* match sets).
    pub(crate) fn join_project(
        &self,
        aq: &AnalyzedQuery,
        pattern_rows: &[&Vec<Match>],
        stats: &mut EngineStats,
        path: DataPath,
    ) -> Result<ResultBatch> {
        let mut sp = obs::span("engine.join_project");
        let columns: Vec<String> =
            aq.ret.iter().map(|r| format!("{}.{}", r.base, r.attr)).collect();
        // --- join per-pattern matches on shared entity variables ---
        // Tuples hold one row index per pattern.
        let n = aq.patterns.len();
        // Where does entity var appear in pattern k? (as subject/object)
        let var_positions = |k: usize| -> Vec<(&str, bool)> {
            let p = &aq.patterns[k];
            vec![(p.subject.as_str(), true), (p.object.as_str(), false)]
        };
        let mut tuples: Vec<Vec<u32>> = pattern_rows[0]
            .iter()
            .enumerate()
            .map(|(i, _)| {
                let mut t = vec![u32::MAX; n];
                t[0] = i as u32;
                t
            })
            .collect();
        let mut bound: Vec<usize> = vec![0];
        for k in 1..n {
            // Join keys: vars of pattern k already bound in earlier patterns.
            let mut keys: Vec<(bool, usize, bool)> = Vec::new();
            // (new_is_subject, earlier_pattern, earlier_is_subject)
            for (var, new_is_subj) in var_positions(k) {
                for &j in &bound {
                    if let Some(&(_, earlier_subj)) =
                        var_positions(j).iter().find(|(v, _)| *v == var)
                    {
                        keys.push((new_is_subj, j, earlier_subj));
                        break;
                    }
                }
            }
            let key_of_new = |m: &Match| -> Vec<i64> {
                keys.iter().map(|&(subj, _, _)| if subj { m.subj } else { m.obj }).collect()
            };
            let key_of_tuple = |t: &[u32]| -> Vec<i64> {
                keys.iter()
                    .map(|&(_, j, earlier_subj)| {
                        let m = &pattern_rows[j][t[j] as usize];
                        if earlier_subj {
                            m.subj
                        } else {
                            m.obj
                        }
                    })
                    .collect()
            };
            if keys.is_empty() {
                let mut next = Vec::with_capacity(tuples.len() * pattern_rows[k].len().max(1));
                for t in &tuples {
                    for (i, _) in pattern_rows[k].iter().enumerate() {
                        let mut nt = t.clone();
                        nt[k] = i as u32;
                        next.push(nt);
                    }
                }
                tuples = next;
            } else if let &[(new_subj, j, earlier_subj)] = keys.as_slice() {
                // Single shared variable (the common case): key on the bare
                // id, no per-row key vector allocation.
                let side = |m: &Match, subj: bool| if subj { m.subj } else { m.obj };
                let build = build_pattern_index(pattern_rows[k], |m| side(m, new_subj));
                tuples = probe_pattern_join(&tuples, k, &build, |t| {
                    side(&pattern_rows[j][t[j] as usize], earlier_subj)
                });
            } else {
                let build = build_pattern_index(pattern_rows[k], key_of_new);
                tuples = probe_pattern_join(&tuples, k, &build, key_of_tuple);
            }
            bound.push(k);
            // Repeated vars inside one pattern are handled by the data
            // query itself (the typed requests carry `subject_is_object`;
            // the text forms share the alias/variable name).
        }

        // --- with-clause constraints ---
        let pat_index: FxHashMap<&str, usize> =
            aq.patterns.iter().map(|p| (p.id.as_str(), p.index)).collect();
        for rel in &aq.relations {
            match rel {
                RelClause::Temporal { left, op, range, right } => {
                    let li = pat_index[left.as_str()];
                    let ri = pat_index[right.as_str()];
                    let range_ns = match range {
                        Some((lo, hi, unit)) => {
                            let u = Duration::from_unit(1, unit).ok_or_else(|| {
                                Error::semantic(format!("unknown time unit `{unit}`"))
                            })?;
                            Some((lo * u.0, hi * u.0))
                        }
                        None => None,
                    };
                    tuples.retain(|t| {
                        let l = &pattern_rows[li][t[li] as usize];
                        let r = &pattern_rows[ri][t[ri] as usize];
                        temporal_holds(*op, range_ns, l.start, r.start)
                    });
                }
                RelClause::Attr { left, op, right } => {
                    // Resolve both sides' values per tuple via entity lookups.
                    let lvar = left.base.as_str();
                    let rvar = right.base.as_str();
                    let lattr = left.attr.as_deref().unwrap_or_default();
                    let rattr = right.attr.as_deref().unwrap_or_default();
                    let lvals =
                        self.attr_map(aq, lvar, lattr, &tuples, pattern_rows, stats, path)?;
                    let rvals =
                        self.attr_map(aq, rvar, rattr, &tuples, pattern_rows, stats, path)?;
                    let lpos = self.var_slot(aq, lvar)?;
                    let rpos = self.var_slot(aq, rvar)?;
                    let dict = &self.stores.dict;
                    tuples.retain(|t| {
                        let lid = id_at(pattern_rows, t, lpos);
                        let rid = id_at(pattern_rows, t, rpos);
                        match (lvals.get(&lid), rvals.get(&rid)) {
                            (Some(a), Some(b)) => cmp_svals(a, *op, b, dict),
                            _ => false,
                        }
                    });
                }
            }
        }

        // --- projection (typed; rendering happens at the caller's edge) ---
        let mut lookups: FxHashMap<(String, String), FxHashMap<i64, SVal>> = FxHashMap::default();
        for item in &aq.ret {
            if item.is_event {
                continue;
            }
            let slot = self.var_slot(aq, &item.base)?;
            let ids: FxHashSet<i64> = tuples.iter().map(|t| id_at(pattern_rows, t, slot)).collect();
            let source = AttrSource::Entity(class_for_type(aq.entities[&item.base].ty));
            let map = self.fetch_attr_map(source, &item.attr, &ids, stats, path)?;
            lookups.insert((item.base.clone(), item.attr.clone()), map);
        }
        // Event-attribute lookups beyond start/end/id go to the events table.
        let mut event_attr_maps: FxHashMap<(String, String), FxHashMap<i64, SVal>> =
            FxHashMap::default();
        for item in &aq.ret {
            if !item.is_event || matches!(item.attr.as_str(), "id" | "starttime" | "endtime") {
                continue;
            }
            let pi = pat_index[item.base.as_str()];
            let ids: FxHashSet<i64> = tuples
                .iter()
                .map(|t| pattern_rows[pi][t[pi] as usize].evt)
                .filter(|&e| e >= 0)
                .collect();
            let map = self.fetch_attr_map(AttrSource::Event, &item.attr, &ids, stats, path)?;
            event_attr_maps.insert((item.base.clone(), item.attr.clone()), map);
        }

        // Resolve each return item to its source once — the row loop then
        // does no per-row key building or map probing by `String` pair.
        enum ProjSource<'m> {
            /// Event column of pattern `pi`: 0 = id, 1 = start, 2 = end.
            EventCol(usize, u8),
            /// Fetched event attribute of pattern `pi`.
            EventAttr(usize, Option<&'m FxHashMap<i64, SVal>>),
            /// Fetched entity attribute at (pattern, is_subject).
            Entity((usize, bool), Option<&'m FxHashMap<i64, SVal>>),
        }
        let mut plan: Vec<ProjSource<'_>> = Vec::with_capacity(aq.ret.len());
        for item in &aq.ret {
            let key = (item.base.clone(), item.attr.clone());
            plan.push(if item.is_event {
                let pi = pat_index[item.base.as_str()];
                match item.attr.as_str() {
                    "id" => ProjSource::EventCol(pi, 0),
                    "starttime" => ProjSource::EventCol(pi, 1),
                    "endtime" => ProjSource::EventCol(pi, 2),
                    _ => ProjSource::EventAttr(pi, event_attr_maps.get(&key)),
                }
            } else {
                ProjSource::Entity(self.var_slot(aq, &item.base)?, lookups.get(&key))
            });
        }
        // Missing attributes project as the empty string, exactly like the
        // stringly pipeline always rendered them — as a symbol, interned
        // once per query.
        let empty = SVal::Str(self.stores.dict.intern(""));
        let fetched = |map: Option<&FxHashMap<i64, SVal>>, id: i64| {
            map.and_then(|m| m.get(&id)).copied().unwrap_or(empty)
        };
        let mut rows: Vec<Vec<SVal>> = Vec::with_capacity(tuples.len());
        for t in &tuples {
            let mut row = Vec::with_capacity(plan.len());
            for src in &plan {
                row.push(match src {
                    ProjSource::EventCol(pi, col) => {
                        let m = &pattern_rows[*pi][t[*pi] as usize];
                        SVal::Int(match col {
                            0 => m.evt,
                            1 => m.start,
                            _ => m.end,
                        })
                    }
                    ProjSource::EventAttr(pi, map) => {
                        let m = &pattern_rows[*pi][t[*pi] as usize];
                        fetched(*map, m.evt)
                    }
                    ProjSource::Entity(slot, map) => fetched(*map, id_at(pattern_rows, t, *slot)),
                });
            }
            rows.push(row);
        }
        if aq.distinct {
            // Sym-keyed row hashing: no string touches the dedup set.
            let mut seen: FxHashSet<Vec<SVal>> = FxHashSet::default();
            rows.retain(|r| seen.insert(r.clone()));
        }
        sp.attr("rows", rows.len() as u64);
        Ok(ResultBatch::from_rows(columns, rows, self.stores.dict.clone()))
    }

    /// Finds where entity `var` is bound: (pattern index, is_subject).
    fn var_slot(&self, aq: &AnalyzedQuery, var: &str) -> Result<(usize, bool)> {
        for p in &aq.patterns {
            if p.subject == var {
                return Ok((p.index, true));
            }
            if p.object == var {
                return Ok((p.index, false));
            }
        }
        Err(Error::semantic(format!("entity `{var}` not bound by any pattern")))
    }

    #[allow(clippy::too_many_arguments)]
    fn attr_map(
        &self,
        aq: &AnalyzedQuery,
        var: &str,
        attr: &str,
        tuples: &[Vec<u32>],
        pattern_rows: &[&Vec<Match>],
        stats: &mut EngineStats,
        path: DataPath,
    ) -> Result<FxHashMap<i64, SVal>> {
        let slot = self.var_slot(aq, var)?;
        let ids: FxHashSet<i64> = tuples.iter().map(|t| id_at(pattern_rows, t, slot)).collect();
        let source = AttrSource::Entity(class_for_type(aq.entities[var].ty));
        self.fetch_attr_map(source, attr, &ids, stats, path)
    }

    /// Fetches one attribute for a set of ids, through the typed backend or
    /// (text-compat path) the SQL parser.
    fn fetch_attr_map(
        &self,
        source: AttrSource,
        attr: &str,
        ids: &FxHashSet<i64>,
        stats: &mut EngineStats,
        path: DataPath,
    ) -> Result<FxHashMap<i64, SVal>> {
        let mut out = FxHashMap::default();
        if ids.is_empty() {
            return Ok(out);
        }
        let mut sorted: Vec<i64> = ids.iter().copied().collect();
        sorted.sort_unstable();
        match path {
            DataPath::Typed => {
                for (id, v) in self.rel().fetch_attr(source, attr, &sorted, &mut stats.backend)? {
                    out.insert(id, v);
                }
            }
            DataPath::Text => {
                let table = match source {
                    AttrSource::Entity(class) => raptor_relstore::backend::table_for_class(class),
                    AttrSource::Event => "events",
                };
                for chunk in sorted.chunks(4096) {
                    let list: Vec<String> = chunk.iter().map(i64::to_string).collect();
                    let sql =
                        format!("SELECT id, {attr} FROM {table} WHERE id IN ({})", list.join(", "));
                    let r = self.query_sql_text(&sql, stats)?;
                    for i in 0..r.n_rows() {
                        if let Some(id) = r.cols[0].get(i).as_int() {
                            // The seed pipeline shipped every value here as
                            // a rendered string. Passing the typed value
                            // through is outcome-identical (`cmp_svals`
                            // compares numeric strings and ints the same
                            // way, and rendering agrees cell-for-cell)
                            // without permanently interning rendered
                            // integers into the append-only dictionary.
                            out.insert(id, r.cols[1].get(i));
                        }
                    }
                }
            }
        }
        Ok(out)
    }
}

/// Indexes one pattern's matches by join key (build side of the
/// cross-pattern hash join).
fn build_pattern_index<K, F>(matches: &[Match], key_of: F) -> FxHashMap<K, Vec<u32>>
where
    K: Eq + std::hash::Hash,
    F: Fn(&Match) -> K,
{
    let mut build: FxHashMap<K, Vec<u32>> =
        FxHashMap::with_capacity_and_hasher(matches.len(), Default::default());
    for (i, m) in matches.iter().enumerate() {
        build.entry(key_of(m)).or_default().push(i as u32);
    }
    build
}

/// Probe side of the cross-pattern hash join: extends each tuple with the
/// new pattern's matching row indices (shared by the single-key and
/// compound-key paths so their semantics cannot drift apart).
fn probe_pattern_join<K, F>(
    tuples: &[Vec<u32>],
    k: usize,
    build: &FxHashMap<K, Vec<u32>>,
    key_of: F,
) -> Vec<Vec<u32>>
where
    K: Eq + std::hash::Hash,
    F: Fn(&[u32]) -> K,
{
    let mut next = Vec::with_capacity(tuples.len());
    for t in tuples {
        if let Some(rows) = build.get(&key_of(t)) {
            for &i in rows {
                let mut nt = t.clone();
                nt[k] = i;
                next.push(nt);
            }
        }
    }
    next
}

fn id_at(pattern_rows: &[&Vec<Match>], t: &[u32], slot: (usize, bool)) -> i64 {
    let m = &pattern_rows[slot.0][t[slot.0] as usize];
    if slot.1 {
        m.subj
    } else {
        m.obj
    }
}

/// Graph projection values map 1:1 onto the shared plane — the symbol is
/// already the engine's currency, so this is a tag re-label, not a copy.
fn gval_to_sval(v: gexec::GVal) -> SVal {
    match v {
        gexec::GVal::Int(i) => SVal::Int(i),
        gexec::GVal::Str(s) => SVal::Str(s),
        gexec::GVal::Null => SVal::Null,
    }
}

fn temporal_holds(
    op: TemporalOp,
    range_ns: Option<(i64, i64)>,
    l_start: i64,
    r_start: i64,
) -> bool {
    let delta = r_start - l_start;
    match op {
        TemporalOp::Before => match range_ns {
            Some((lo, hi)) => delta >= lo && delta <= hi && delta > 0,
            None => delta > 0,
        },
        TemporalOp::After => match range_ns {
            Some((lo, hi)) => -delta >= lo && -delta <= hi && delta < 0,
            None => delta < 0,
        },
        TemporalOp::Within => match range_ns {
            Some((lo, hi)) => delta.abs() >= lo && delta.abs() <= hi,
            None => true,
        },
    }
}

/// `with`-clause attribute comparison over typed values. Ints compare
/// numerically; strings that both parse as integers do too (the seed's
/// stringly pipeline shipped numbers as strings, and this rule keeps those
/// outcomes identical now that both data paths ship typed values);
/// otherwise lexically, resolved through the dictionary. NULL is
/// incomparable under every operator — matching the giant-SQL/Cypher
/// baselines rather than the seed's render-to-`""` behavior (the audit
/// loader never stores NULL attributes, so the cases cannot diverge on
/// real data).
fn cmp_svals(a: &SVal, op: CmpOp, b: &SVal, dict: &raptor_common::SharedDict) -> bool {
    let ord = match (a, b) {
        (SVal::Int(x), SVal::Int(y)) => x.cmp(y),
        (SVal::Str(x), SVal::Str(y)) => {
            if x == y {
                std::cmp::Ordering::Equal
            } else {
                let (x, y) = (dict.resolve(*x), dict.resolve(*y));
                match (x.parse::<i64>(), y.parse::<i64>()) {
                    (Ok(p), Ok(q)) => p.cmp(&q),
                    _ => x.cmp(y),
                }
            }
        }
        (SVal::Int(x), SVal::Str(y)) => match dict.resolve(*y).parse::<i64>() {
            Ok(q) => x.cmp(&q),
            Err(_) => return false,
        },
        (SVal::Str(x), SVal::Int(y)) => match dict.resolve(*x).parse::<i64>() {
            Ok(p) => p.cmp(y),
            Err(_) => return false,
        },
        _ => return false,
    };
    match op {
        CmpOp::Eq => ord.is_eq(),
        CmpOp::Ne => !ord.is_eq(),
        CmpOp::Lt => ord.is_lt(),
        CmpOp::Le => ord.is_le(),
        CmpOp::Gt => ord.is_gt(),
        CmpOp::Ge => ord.is_ge(),
    }
}

/// Rewrites an event-pattern query into the paper's length-1 event path
/// variant (query type (c) of Table VIII): each `proc p OP file f` becomes
/// `proc p ->[OP] file f`, executing on the graph backend.
pub fn to_length1_path_query(q: &raptor_tbql::Query) -> raptor_tbql::Query {
    let mut out = q.clone();
    for p in &mut out.patterns {
        if let PatternOp::Event(op) = &p.op {
            p.op = PatternOp::Path {
                arrow: raptor_tbql::Arrow::Single,
                min: None,
                max: None,
                op: Some(op.clone()),
            };
        }
    }
    out
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::load::load;
    use raptor_audit::sim::Simulator;
    use raptor_audit::LogParser;
    use raptor_common::time::Timestamp;

    /// Builds the Figure 2 data-leak scenario plus background noise.
    pub(crate) fn fig2_engine() -> Engine {
        let mut sim = Simulator::new(99, Timestamp::from_secs(1_000_000));
        raptor_audit::sim::generate_background(
            &mut sim,
            &raptor_audit::sim::BackgroundProfile { users: 3, sessions: 30, ..Default::default() },
        );
        let shell = sim.boot_process("/bin/bash", "root");
        let tar = sim.spawn(shell, "/bin/tar", "tar cf /tmp/upload.tar /etc/passwd");
        sim.read_file(tar, "/etc/passwd", 4096, 4);
        sim.write_file(tar, "/tmp/upload.tar", 4096, 4);
        sim.exit(tar);
        let bzip = sim.spawn(shell, "/bin/bzip2", "bzip2 /tmp/upload.tar");
        sim.read_file(bzip, "/tmp/upload.tar", 4096, 2);
        sim.write_file(bzip, "/tmp/upload.tar.bz2", 2048, 2);
        sim.exit(bzip);
        let gpg = sim.spawn(shell, "/usr/bin/gpg", "gpg -c");
        sim.read_file(gpg, "/tmp/upload.tar.bz2", 2048, 2);
        sim.write_file(gpg, "/tmp/upload", 2048, 2);
        sim.exit(gpg);
        let curl = sim.spawn(shell, "/usr/bin/curl", "curl");
        sim.read_file(curl, "/tmp/upload", 2048, 2);
        let fd = sim.connect(curl, "192.168.29.128", 443);
        sim.send(curl, fd, 2048, 2);
        sim.exit(curl);
        let mut log = LogParser::parse(&sim.finish());
        raptor_audit::merge_events(&mut log.events, raptor_audit::reduce::DEFAULT_THRESHOLD);
        Engine::new(load(&log).unwrap())
    }

    fn pattern_queries(stats: &EngineStats) -> Vec<&QueryInfo> {
        stats
            .queries
            .iter()
            .filter(|q| matches!(q.kind, QueryKind::EventPattern | QueryKind::PathPattern))
            .collect()
    }

    #[test]
    fn figure2_query_finds_the_attack_scheduled() {
        let engine = fig2_engine();
        let (r, stats) =
            engine.execute_text(raptor_tbql::parser::FIG2_QUERY, ExecMode::Scheduled).unwrap();
        assert!(stats.data_queries >= 8, "{stats:?}");
        assert_eq!(r.columns.len(), 9);
        assert_eq!(r.rows.len(), 1, "{:?}", r.rows);
        let row = &r.rows[0];
        assert_eq!(row[0], "/bin/tar");
        assert_eq!(row[1], "/etc/passwd");
        assert_eq!(row[8], "192.168.29.128");
    }

    #[test]
    fn scheduled_mode_is_parse_free() {
        let engine = fig2_engine();
        let parses_before = engine.stores.rel.text_parse_count();
        let (_, stats) =
            engine.execute_text(raptor_tbql::parser::FIG2_QUERY, ExecMode::Scheduled).unwrap();
        assert_eq!(stats.text_parses, 0, "scheduled mode must not parse query text");
        assert_eq!(stats.backend.text_parses, 0);
        assert_eq!(
            engine.stores.rel.text_parse_count(),
            parses_before,
            "the relational store saw no SQL text"
        );
        assert!(stats.queries.iter().all(|q| q.text.is_none()), "{:?}", stats.queries);
        // The giant baseline *does* parse — the counter works.
        let (_, stats) =
            engine.execute_text(raptor_tbql::parser::FIG2_QUERY, ExecMode::GiantSql).unwrap();
        assert_eq!(stats.text_parses, 1);
        assert!(engine.stores.rel.text_parse_count() > parses_before);
    }

    #[test]
    fn typed_path_matches_text_path() {
        let engine = fig2_engine();
        let q = parse_tbql(raptor_tbql::parser::FIG2_QUERY).unwrap();
        let aq = analyze(&q).unwrap();
        let (typed, tstats) = engine.execute(&aq, ExecMode::Scheduled).unwrap();
        let (text, xstats) = engine.execute_scheduled_via_text(&aq).unwrap();
        assert_eq!(typed.sorted_rows(), text.sorted_rows());
        assert_eq!(tstats.data_queries, xstats.data_queries);
        assert!(xstats.text_parses > 0, "compat path must exercise the parsers");
    }

    #[test]
    fn giant_sql_agrees_with_scheduled() {
        let engine = fig2_engine();
        let (a, _) =
            engine.execute_text(raptor_tbql::parser::FIG2_QUERY, ExecMode::Scheduled).unwrap();
        let (b, _) =
            engine.execute_text(raptor_tbql::parser::FIG2_QUERY, ExecMode::GiantSql).unwrap();
        assert_eq!(a.sorted_rows(), b.sorted_rows());
    }

    #[test]
    fn giant_cypher_agrees_with_scheduled() {
        let engine = fig2_engine();
        let (a, _) =
            engine.execute_text(raptor_tbql::parser::FIG2_QUERY, ExecMode::Scheduled).unwrap();
        let (c, _) =
            engine.execute_text(raptor_tbql::parser::FIG2_QUERY, ExecMode::GiantCypher).unwrap();
        assert_eq!(a.sorted_rows(), c.sorted_rows());
    }

    #[test]
    fn length1_path_variant_agrees() {
        let engine = fig2_engine();
        let q = parse_tbql(raptor_tbql::parser::FIG2_QUERY).unwrap();
        let path_q = to_length1_path_query(&q);
        let aq = analyze(&path_q).unwrap();
        let (r, stats) = engine.execute(&aq, ExecMode::Scheduled).unwrap();
        // All 8 pattern queries went to the graph backend.
        let pats = pattern_queries(&stats);
        assert_eq!(pats.len(), 8);
        assert!(pats.iter().all(|q| q.backend == "graph"), "{:?}", stats.queries);
        let (a, _) =
            engine.execute_text(raptor_tbql::parser::FIG2_QUERY, ExecMode::Scheduled).unwrap();
        assert_eq!(a.sorted_rows(), r.sorted_rows());
    }

    #[test]
    fn self_loop_pattern_requires_same_entity() {
        let engine = fig2_engine();
        // `p` is both subject and object: only events whose subject and
        // object are the *same* process may match. bash starts plenty of
        // (other) processes, but no process starts itself, so the result is
        // empty — without the `subject_is_object` constraint the typed path
        // would wrongly return every bash→child start event.
        let q = "proc p[\"%bash%\"] start proc p return distinct p";
        let (r, stats) = engine.execute_text(q, ExecMode::Scheduled).unwrap();
        assert!(r.rows.is_empty(), "{:?}", r.rows);
        assert_eq!(stats.text_parses, 0);
        // Sanity: with two distinct variables the same shape does match.
        let q = "proc p[\"%bash%\"] start proc q return distinct p, q";
        let (r, _) = engine.execute_text(q, ExecMode::Scheduled).unwrap();
        assert!(!r.rows.is_empty());
        // The giant-SQL baseline (which handles the shared variable via its
        // single-alias FROM list) agrees with the typed scheduled path.
        let q = "proc p[\"%bash%\"] start proc p return distinct p";
        let (g, _) = engine.execute_text(q, ExecMode::GiantSql).unwrap();
        assert!(g.rows.is_empty(), "{:?}", g.rows);
        // And the length-1 path form exercises the graph backend's
        // same-variable closure.
        let q = "proc p[\"%bash%\"] ->[start] proc p return distinct p";
        let (c, stats) = engine.execute_text(q, ExecMode::Scheduled).unwrap();
        assert!(c.rows.is_empty(), "{:?}", c.rows);
        assert!(pattern_queries(&stats).iter().all(|qi| qi.backend == "graph"));
    }

    #[test]
    fn temporal_constraints_filter() {
        let engine = fig2_engine();
        // Reversed temporal order matches nothing.
        let q = "proc p4[\"%/usr/bin/curl%\"] connect ip i1 as e1 \
                 proc p1[\"%/bin/tar%\"] read file f1[\"%/etc/passwd%\"] as e2 \
                 with e1 before e2 return p4, i1";
        let (r, _) = engine.execute_text(q, ExecMode::Scheduled).unwrap();
        assert!(r.rows.is_empty());
        // Correct order matches.
        let q = "proc p4[\"%/usr/bin/curl%\"] connect ip i1 as e1 \
                 proc p1[\"%/bin/tar%\"] read file f1[\"%/etc/passwd%\"] as e2 \
                 with e2 before e1 return p4, i1";
        let (r, _) = engine.execute_text(q, ExecMode::Scheduled).unwrap();
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    fn short_circuit_stops_the_dependency_chain() {
        let engine = fig2_engine();
        // Patterns 0 and 1 share `p` (one chain); pattern 2 is independent.
        // The empty pattern 0 short-circuits its chain — pattern 1 is never
        // queried — while the independent chain still executes, so what
        // runs is a property of the query and data alone, never of
        // cross-chain timing (the parallel-plane determinism contract).
        let q = "proc p[\"%/bin/nonexistent%\"] read file f as e1 \
                 proc p write file f2 as e2 \
                 proc q3 connect ip i as e3 return p, f";
        let (r, stats) = engine.execute_text(q, ExecMode::Scheduled).unwrap();
        assert!(r.rows.is_empty());
        assert!(stats.short_circuited);
        let pats = pattern_queries(&stats);
        assert_eq!(pats.len(), 2, "chain-mate skipped, independent chain ran: {stats:?}");
        let labels: Vec<&str> = pats.iter().map(|q| q.label.as_str()).collect();
        assert!(labels.contains(&"e1") && labels.contains(&"e3"), "{labels:?}");
    }

    #[test]
    fn variable_length_path_bridges_intermediate_steps() {
        let engine = fig2_engine();
        // passwd's content flows to the C2 via tar→file→bzip2→...→curl→ip.
        // A var-length path from the tar process reaches upload.tar.bz2 in
        // 2 hops? No: proc→file edges only go one hop; information flow
        // through files needs file→proc edges which system events do not
        // have (reads point proc→file). Instead test proc p ~>(1~1)[write]:
        let q = "proc p[\"%/bin/tar%\"] ~>(1~1)[write] file f return p, f";
        let (r, _) = engine.execute_text(q, ExecMode::Scheduled).unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][1], "/tmp/upload.tar");
    }

    #[test]
    fn attribute_relationship_joins() {
        let engine = fig2_engine();
        // Same user wrote upload.tar and read it (root): join on user attr.
        let q = "proc pa write file f[\"%/tmp/upload.tar%\"] as e1 \
                 proc pb read file f as e2 \
                 with pa.user = pb.user return pa, pb";
        let (r, _) = engine.execute_text(q, ExecMode::Scheduled).unwrap();
        assert!(!r.rows.is_empty());
        // Disjoint users filter everything out.
        let q2 = "proc pa write file f[\"%/tmp/upload.tar%\"] as e1 \
                  proc pb read file f as e2 \
                  with pa.user != pb.user return pa, pb";
        let (r2, _) = engine.execute_text(q2, ExecMode::Scheduled).unwrap();
        assert!(r2.rows.is_empty());
    }

    #[test]
    fn event_attribute_return() {
        let engine = fig2_engine();
        let q = "proc p[\"%/bin/tar%\"] read file f[\"%/etc/passwd%\"] as e1 \
                 return e1.amount, e1.optype, p";
        let (r, _) = engine.execute_text(q, ExecMode::Scheduled).unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], "4096");
        assert_eq!(r.rows[0][1], "read");
    }

    #[test]
    fn windows_restrict_results() {
        let engine = fig2_engine();
        let q = "proc p[\"%/bin/tar%\"] read file f[\"%/etc/passwd%\"] as e1 before 10 return p, f";
        let (r, _) = engine.execute_text(q, ExecMode::Scheduled).unwrap();
        assert!(r.rows.is_empty(), "window before epoch+10ns excludes all");
        let q = "proc p[\"%/bin/tar%\"] read file f[\"%/etc/passwd%\"] as e1 after 10 return p, f";
        let (r, _) = engine.execute_text(q, ExecMode::Scheduled).unwrap();
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    fn propagation_shrinks_later_queries() {
        let engine = fig2_engine();
        let (_, stats) =
            engine.execute_text(raptor_tbql::parser::FIG2_QUERY, ExecMode::Scheduled).unwrap();
        // Later data queries carry IN filters from earlier ones.
        let with_in = stats.queries.iter().filter(|q| q.in_lists > 0).count();
        assert!(with_in >= 4, "expected propagated IN filters: {:#?}", stats.queries);
    }
}
