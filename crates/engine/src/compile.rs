//! TBQL → SQL / Cypher compilation.
//!
//! Each *event pattern* compiles to a small SQL data query joining the two
//! entity tables with the events table; each *path pattern* compiles to a
//! Cypher data query using the graph store's path syntax. The whole query
//! can also be compiled into one *giant* SQL or Cypher statement — the
//! baselines of Table VIII and the comparison texts of Table X.
//!
//! Known restriction: the giant compiled forms support plain
//! `before`/`after` temporal relationships; `within` and `[lo-hi unit]`
//! gap ranges need arithmetic that the embedded SQL subset does not
//! expose, and are only handled by the scheduled execution path.

use std::fmt::Write as _;

use raptor_common::error::{Error, Result};
use raptor_common::hash::FxHashMap;
use raptor_common::intern::SharedDict;
use raptor_common::time::Duration;
use raptor_tbql::analyze::{APattern, AnalyzedQuery};
use raptor_tbql::{
    AttrExpr, CmpOp, EntityType, OpExpr, PatternOp, RelClause, TemporalOp, Value, Window,
};

/// Compilation context.
pub struct CompileCtx<'a> {
    pub aq: &'a AnalyzedQuery,
    /// Reference time for `last N unit` windows (max event end in the db).
    pub now_ns: i64,
    /// The shared dictionary plane: TBQL string literals are interned here
    /// at compile time, so typed requests carry pre-interned symbols and
    /// backends never do per-request dictionary lookups.
    pub dict: SharedDict,
}

/// Entity ids propagated from already-executed patterns (scheduler state).
///
/// Candidate sets are kept **sorted and distinct**: the `MAX_IN_LIST` cap
/// then measures distinct ids, and compiled `IN` lists (text or typed) are
/// deterministic for a given result set.
#[derive(Clone, Default, Debug)]
pub struct Propagation {
    entity_ids: FxHashMap<String, Vec<i64>>,
}

impl Propagation {
    /// Replaces the candidate set for `var`. `ids` must already be sorted
    /// and distinct — the [`StorageBackend::entity_candidates`] contract —
    /// so canonicalization happens in exactly one place (the backend)
    /// instead of being repeated on every propagation step.
    ///
    /// [`StorageBackend::entity_candidates`]: raptor_storage::StorageBackend::entity_candidates
    pub fn set(&mut self, var: impl Into<String>, ids: Vec<i64>) {
        debug_assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "candidate ids must arrive sorted-distinct"
        );
        self.entity_ids.insert(var.into(), ids);
    }

    /// Iterates the candidate sets (variable name → sorted-distinct ids).
    /// Iteration order is the hash map's — callers needing determinism
    /// (e.g. the durability plane's checkpoint codec) must sort.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[i64])> {
        self.entity_ids.iter().map(|(k, v)| (k.as_str(), v.as_slice()))
    }

    /// Grows `var` by union with `ids`; sets it when absent. This is the
    /// *streaming* propagation rule: candidate sets derived from entity
    /// filters only ever gain members as new entities are ingested, so
    /// standing queries union per-epoch delta seeds instead of recomputing
    /// (or intersecting) them.
    ///
    /// Like [`Propagation::set`], `ids` must arrive sorted-distinct (the
    /// backend contract); the merge relies on it.
    pub fn union(&mut self, var: &str, ids: Vec<i64>) {
        debug_assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "candidate ids must arrive sorted-distinct"
        );
        match self.entity_ids.get_mut(var) {
            Some(existing) => {
                // Linear merge of two sorted distinct lists — the existing
                // set is typically much larger than the per-epoch delta.
                let mut merged = Vec::with_capacity(existing.len() + ids.len());
                let (mut i, mut j) = (0, 0);
                while i < existing.len() && j < ids.len() {
                    match existing[i].cmp(&ids[j]) {
                        std::cmp::Ordering::Less => {
                            merged.push(existing[i]);
                            i += 1;
                        }
                        std::cmp::Ordering::Greater => {
                            merged.push(ids[j]);
                            j += 1;
                        }
                        std::cmp::Ordering::Equal => {
                            merged.push(existing[i]);
                            i += 1;
                            j += 1;
                        }
                    }
                }
                merged.extend_from_slice(&existing[i..]);
                merged.extend_from_slice(&ids[j..]);
                *existing = merged;
            }
            None => self.entity_ids.insert(var.into(), ids).map_or((), drop),
        }
    }

    /// Narrows `var` to the intersection with `ids`; sets it when absent.
    /// `ids` come straight from match rows, so (unlike [`Propagation::set`])
    /// they may be unsorted and duplicated.
    pub fn intersect(&mut self, var: &str, mut ids: Vec<i64>) {
        match self.entity_ids.get_mut(var) {
            Some(existing) => {
                let set: raptor_common::FxHashSet<i64> = ids.into_iter().collect();
                existing.retain(|x| set.contains(x));
            }
            None => {
                ids.sort_unstable();
                ids.dedup();
                self.set(var, ids);
            }
        }
    }

    /// The candidate set for `var`, if any (sorted, distinct).
    pub fn get(&self, var: &str) -> Option<&[i64]> {
        self.entity_ids.get(var).map(Vec::as_slice)
    }

    /// The candidate set for `var` when it is small enough to be worth an
    /// `IN` filter — beyond [`MAX_IN_LIST`] distinct ids the filter costs
    /// more than it prunes.
    pub fn in_list(&self, var: &str) -> Option<&[i64]> {
        self.get(var).filter(|ids| ids.len() <= MAX_IN_LIST)
    }
}

/// Caps the size of propagated `IN` lists (distinct ids); beyond this the
/// filter costs more than it prunes.
pub const MAX_IN_LIST: usize = 4096;

pub fn table_for_type(ty: EntityType) -> &'static str {
    match ty {
        EntityType::File => "files",
        EntityType::Proc => "processes",
        EntityType::Ip => "netconns",
    }
}

pub fn label_for_type(ty: EntityType) -> &'static str {
    match ty {
        EntityType::File => "File",
        EntityType::Proc => "Process",
        EntityType::Ip => "NetConn",
    }
}

fn event_kind_for(ty: EntityType) -> &'static str {
    match ty {
        EntityType::File => "file",
        EntityType::Proc => "process",
        EntityType::Ip => "network",
    }
}

fn sql_str(s: &str) -> String {
    format!("'{}'", s.replace('\'', "''"))
}

// --- SQL fragments ---

fn attr_to_sql(alias: &str, e: &AttrExpr) -> String {
    match e {
        AttrExpr::Bare { .. } => unreachable!("analyzer desugars bare values"),
        AttrExpr::Cmp { attr, op, value } => {
            let col = format!("{alias}.{}", attr.attr.as_deref().unwrap_or(&attr.base));
            match (op, value) {
                (CmpOp::Eq, Value::Str(s)) if s.contains('%') => {
                    format!("{col} LIKE {}", sql_str(s))
                }
                (CmpOp::Ne, Value::Str(s)) if s.contains('%') => {
                    format!("{col} NOT LIKE {}", sql_str(s))
                }
                (_, Value::Str(s)) => format!("{col} {} {}", op.as_str(), sql_str(s)),
                (_, Value::Int(i)) => format!("{col} {} {i}", op.as_str()),
            }
        }
        AttrExpr::InSet { attr, negated, set } => {
            let col = format!("{alias}.{}", attr.attr.as_deref().unwrap_or(&attr.base));
            let vals: Vec<String> = set
                .iter()
                .map(|v| match v {
                    Value::Int(i) => i.to_string(),
                    Value::Str(s) => sql_str(s),
                })
                .collect();
            format!("{col} {}IN ({})", if *negated { "NOT " } else { "" }, vals.join(", "))
        }
        AttrExpr::And(a, b) => format!("({} AND {})", attr_to_sql(alias, a), attr_to_sql(alias, b)),
        AttrExpr::Or(a, b) => format!("({} OR {})", attr_to_sql(alias, a), attr_to_sql(alias, b)),
    }
}

fn op_to_sql(evt: &str, e: &OpExpr) -> String {
    match e {
        OpExpr::Op(name) => format!("{evt}.optype = {}", sql_str(name)),
        OpExpr::Not(inner) => format!("NOT {}", op_to_sql(evt, inner)),
        OpExpr::And(a, b) => format!("({} AND {})", op_to_sql(evt, a), op_to_sql(evt, b)),
        OpExpr::Or(a, b) => format!("({} OR {})", op_to_sql(evt, a), op_to_sql(evt, b)),
    }
}

fn window_to_sql(evt: &str, w: &Window, now_ns: i64) -> Result<String> {
    Ok(match w {
        Window::FromTo(a, b) => {
            format!("{evt}.starttime >= {} AND {evt}.starttime <= {}", a.0, b.0)
        }
        Window::At(t) => format!("{evt}.starttime <= {} AND {evt}.endtime >= {}", t.0, t.0),
        Window::Before(t) => format!("{evt}.starttime < {}", t.0),
        Window::After(t) => format!("{evt}.starttime > {}", t.0),
        Window::Last { n, unit } => {
            let d = Duration::from_unit(*n, unit)
                .ok_or_else(|| Error::semantic(format!("unknown time unit `{unit}`")))?;
            format!("{evt}.starttime >= {}", now_ns.saturating_sub(d.0))
        }
    })
}

fn in_list_sql(alias: &str, ids: &[i64]) -> String {
    format!("{alias}.id IN ({})", render_id_list(ids))
}

/// Renders an id list; an empty candidate set becomes the impossible id -1
/// so the emitted SQL/Cypher stays well-formed (and matches nothing).
fn render_id_list(ids: &[i64]) -> String {
    if ids.is_empty() {
        return "-1".to_string();
    }
    let list: Vec<String> = ids.iter().map(i64::to_string).collect();
    list.join(", ")
}

/// The entity-candidate resolution query the scheduler runs first for every
/// filtered entity (one small indexed lookup per entity).
pub fn entity_candidate_sql(id: &str, ty: EntityType, filter: &AttrExpr) -> String {
    format!("SELECT {id}.id FROM {} {id} WHERE {}", table_for_type(ty), attr_to_sql(id, filter))
}

/// Compiles one event pattern into a small SQL data query.
///
/// Projected columns (positional): subject id, object id, event id,
/// starttime, endtime.
pub fn sql_for_event_pattern(
    ctx: &CompileCtx<'_>,
    p: &APattern,
    prop: &Propagation,
) -> Result<String> {
    let PatternOp::Event(op) = &p.op else {
        return Err(Error::semantic("path patterns compile to Cypher, not SQL"));
    };
    let subj = &ctx.aq.entities[&p.subject];
    let obj = &ctx.aq.entities[&p.object];
    let (s, o, e) = (&p.subject, &p.object, &p.id);
    let mut sql = format!(
        "SELECT {s}.id, {o}.id, {e}.id, {e}.starttime, {e}.endtime FROM {} {s}, events {e}, {} {o} WHERE {e}.subject = {s}.id AND {e}.object = {o}.id AND {e}.kind = {}",
        table_for_type(subj.ty),
        table_for_type(obj.ty),
        sql_str(event_kind_for(obj.ty)),
    );
    let mut push = |cond: String| {
        let _ = write!(sql, " AND {cond}");
    };
    push(op_to_sql(e, op));
    if let Some(f) = &subj.filter {
        push(attr_to_sql(s, f));
    }
    if let Some(f) = &obj.filter {
        push(attr_to_sql(o, f));
    }
    if let Some(f) = &p.event_filter {
        push(attr_to_sql(e, f));
    }
    if let Some(w) = &p.window {
        push(window_to_sql(e, w, ctx.now_ns)?);
    }
    for w in &ctx.aq.global_windows {
        push(window_to_sql(e, w, ctx.now_ns)?);
    }
    // Propagated entity ids constrain both the entity alias and — far more
    // importantly — the event columns, so the events scan runs through the
    // subject/object hash indexes instead of the (much larger) optype index.
    for (var, alias, evt_col) in [(s, s, "subject"), (o, o, "object")] {
        if let Some(ids) = prop.in_list(var.as_str()) {
            push(in_list_sql(alias, ids));
            push(format!("{e}.{evt_col} IN ({})", render_id_list(ids)));
        }
    }
    Ok(sql)
}

// --- Cypher fragments ---

fn cypher_str(s: &str) -> String {
    format!("'{}'", s.replace('\'', "''"))
}

fn attr_to_cypher(var: &str, e: &AttrExpr) -> String {
    match e {
        AttrExpr::Bare { .. } => unreachable!("analyzer desugars bare values"),
        AttrExpr::Cmp { attr, op, value } => {
            let prop = format!("{var}.{}", attr.attr.as_deref().unwrap_or(&attr.base));
            match (op, value) {
                (CmpOp::Eq, Value::Str(s)) if s.contains('%') => str_pred_cypher(&prop, s, false),
                (CmpOp::Ne, Value::Str(s)) if s.contains('%') => str_pred_cypher(&prop, s, true),
                (_, Value::Str(s)) => {
                    let op_str = if *op == CmpOp::Ne { "<>" } else { op.as_str() };
                    format!("{prop} {} {}", op_str, cypher_str(s))
                }
                (_, Value::Int(i)) => {
                    let op_str = if *op == CmpOp::Ne { "<>" } else { op.as_str() };
                    format!("{prop} {op_str} {i}")
                }
            }
        }
        AttrExpr::InSet { attr, negated, set } => {
            let prop = format!("{var}.{}", attr.attr.as_deref().unwrap_or(&attr.base));
            let vals: Vec<String> = set
                .iter()
                .map(|v| match v {
                    Value::Int(i) => i.to_string(),
                    Value::Str(s) => cypher_str(s),
                })
                .collect();
            let base = format!("{prop} IN [{}]", vals.join(", "));
            if *negated {
                format!("NOT ({base})")
            } else {
                base
            }
        }
        AttrExpr::And(a, b) => {
            format!("({} AND {})", attr_to_cypher(var, a), attr_to_cypher(var, b))
        }
        AttrExpr::Or(a, b) => {
            format!("({} OR {})", attr_to_cypher(var, a), attr_to_cypher(var, b))
        }
    }
}

/// `%lit%` → CONTAINS, `%lit` → ENDS WITH, `lit%` → STARTS WITH; other
/// wildcard shapes fall back to CONTAINS on the longest literal run.
fn str_pred_cypher(prop: &str, pattern: &str, negated: bool) -> String {
    let inner = pattern.trim_matches('%');
    let pred = if pattern.starts_with('%') && pattern.ends_with('%') && !inner.contains('%') {
        format!("{prop} CONTAINS {}", cypher_str(inner))
    } else if pattern.starts_with('%') && !inner.contains('%') {
        format!("{prop} ENDS WITH {}", cypher_str(inner))
    } else if pattern.ends_with('%') && !inner.contains('%') {
        format!("{prop} STARTS WITH {}", cypher_str(inner))
    } else {
        let run = inner.split('%').max_by_key(|r| r.len()).unwrap_or("");
        format!("{prop} CONTAINS {}", cypher_str(run))
    };
    if negated {
        format!("NOT ({pred})")
    } else {
        pred
    }
}

fn op_to_cypher(edge: &str, e: &OpExpr) -> String {
    match e {
        OpExpr::Op(name) => format!("{edge}.optype = {}", cypher_str(name)),
        OpExpr::Not(inner) => format!("NOT ({})", op_to_cypher(edge, inner)),
        OpExpr::And(a, b) => format!("({} AND {})", op_to_cypher(edge, a), op_to_cypher(edge, b)),
        OpExpr::Or(a, b) => format!("({} OR {})", op_to_cypher(edge, a), op_to_cypher(edge, b)),
    }
}

fn window_to_cypher(edge: &str, w: &Window, now_ns: i64) -> Result<String> {
    Ok(match w {
        Window::FromTo(a, b) => {
            format!("{edge}.starttime >= {} AND {edge}.starttime <= {}", a.0, b.0)
        }
        Window::At(t) => format!("{edge}.starttime <= {} AND {edge}.endtime >= {}", t.0, t.0),
        Window::Before(t) => format!("{edge}.starttime < {}", t.0),
        Window::After(t) => format!("{edge}.starttime > {}", t.0),
        Window::Last { n, unit } => {
            let d = Duration::from_unit(*n, unit)
                .ok_or_else(|| Error::semantic(format!("unknown time unit `{unit}`")))?;
            format!("{edge}.starttime >= {}", now_ns.saturating_sub(d.0))
        }
    })
}

/// Renders one pattern's MATCH fragment, collecting WHERE conditions.
/// Returns the path text. `edge_var` is the name bound to the final hop
/// (event patterns and final-hop-constrained paths).
fn cypher_pattern_fragment(
    ctx: &CompileCtx<'_>,
    p: &APattern,
    conds: &mut Vec<String>,
) -> Result<String> {
    let subj = &ctx.aq.entities[&p.subject];
    let obj = &ctx.aq.entities[&p.object];
    if let Some(f) = &subj.filter {
        conds.push(attr_to_cypher(&p.subject, f));
    }
    if let Some(f) = &obj.filter {
        conds.push(attr_to_cypher(&p.object, f));
    }
    let s_node = format!("({}:{})", p.subject, label_for_type(subj.ty));
    let o_node = format!("({}:{})", p.object, label_for_type(obj.ty));
    let frag = match &p.op {
        PatternOp::Event(op) => {
            conds.push(op_to_cypher(&p.id, op));
            if let Some(f) = &p.event_filter {
                conds.push(attr_to_cypher(&p.id, f));
            }
            if let Some(w) = &p.window {
                conds.push(window_to_cypher(&p.id, w, ctx.now_ns)?);
            }
            for w in &ctx.aq.global_windows {
                conds.push(window_to_cypher(&p.id, w, ctx.now_ns)?);
            }
            format!("{s_node}-[{}:EVENT]->{o_node}", p.id)
        }
        PatternOp::Path { arrow, min, max, op } => {
            path_fragment(p, *arrow, *min, *max, op.as_ref(), &s_node, &o_node, conds)
        }
    };
    Ok(frag)
}

/// Shared path-fragment rendering. `->` means exactly one hop; `~>` renders
/// variable-length, splitting off the final hop when it carries an
/// operation constraint (TBQL's final-hop semantics).
#[allow(clippy::too_many_arguments)]
fn path_fragment(
    p: &APattern,
    arrow: raptor_tbql::Arrow,
    min: Option<u32>,
    max: Option<u32>,
    op: Option<&OpExpr>,
    s_node: &str,
    o_node: &str,
    conds: &mut Vec<String>,
) -> String {
    let (lo, hi) =
        if arrow == raptor_tbql::Arrow::Single { (1, Some(1)) } else { (min.unwrap_or(1), max) };
    let hi_text = hi.map(|m| m.to_string()).unwrap_or_default();
    match op {
        Some(op) if lo == 1 && hi == Some(1) => {
            conds.push(op_to_cypher(&p.id, op));
            format!("{s_node}-[{}:EVENT]->{o_node}", p.id)
        }
        Some(op) => {
            conds.push(op_to_cypher(&p.id, op));
            let plo = lo.saturating_sub(1);
            let phi = hi.map(|m| (m.saturating_sub(1)).to_string()).unwrap_or_default();
            format!("{s_node}-[:EVENT*{plo}..{phi}]->(_m{})-[{}:EVENT]->{o_node}", p.index, p.id)
        }
        None if lo == 1 && hi == Some(1) => {
            format!("{s_node}-[{}:EVENT]->{o_node}", p.id)
        }
        None => format!("{s_node}-[:EVENT*{lo}..{hi_text}]->{o_node}"),
    }
}

/// Compiles one path pattern into a Cypher data query. Projected columns
/// (positional): subject id, object id.
pub fn cypher_for_path_pattern(
    ctx: &CompileCtx<'_>,
    p: &APattern,
    prop: &Propagation,
) -> Result<String> {
    if !matches!(p.op, PatternOp::Path { .. }) {
        return Err(Error::semantic("event patterns compile to SQL, not Cypher"));
    }
    let mut conds = Vec::new();
    let frag = cypher_pattern_fragment(ctx, p, &mut conds)?;
    for var in [&p.subject, &p.object] {
        if let Some(ids) = prop.in_list(var.as_str()) {
            conds.push(format!("{var}.id IN [{}]", render_id_list(ids)));
        }
    }
    let mut q = format!("MATCH {frag}");
    if !conds.is_empty() {
        let _ = write!(q, " WHERE {}", conds.join(" AND "));
    }
    if p.has_final_hop() {
        // Single-hop paths bind an event edge: expose its id and timestamps
        // so `with` temporal clauses work on the length-1 variant.
        let _ = write!(
            q,
            " RETURN DISTINCT {}.id, {}.id, {e}.id, {e}.starttime, {e}.endtime",
            p.subject,
            p.object,
            e = p.id
        );
    } else {
        let _ = write!(q, " RETURN DISTINCT {}.id, {}.id", p.subject, p.object);
    }
    Ok(q)
}

/// Compiles the whole query into one giant SQL statement (the paper's
/// baseline "(b)"). Only valid when every pattern is an event pattern.
pub fn giant_sql(ctx: &CompileCtx<'_>) -> Result<String> {
    let aq = ctx.aq;
    if aq.patterns.iter().any(|p| p.is_path()) {
        return Err(Error::semantic(
            "giant SQL requires event patterns only (paths need the graph backend)",
        ));
    }
    // SELECT: return items.
    let items: Vec<String> = aq.ret.iter().map(|r| format!("{}.{}", r.base, r.attr)).collect();
    let mut sql =
        format!("SELECT {}{}", if aq.distinct { "DISTINCT " } else { "" }, items.join(", "));
    // FROM: each entity once, each pattern's event once.
    let mut from: Vec<String> = Vec::new();
    for id in &aq.entity_order {
        let e = &aq.entities[id];
        from.push(format!("{} {}", table_for_type(e.ty), id));
    }
    for p in &aq.patterns {
        from.push(format!("events {}", p.id));
    }
    let _ = write!(sql, " FROM {}", from.join(", "));
    // WHERE.
    let mut conds: Vec<String> = Vec::new();
    for p in &aq.patterns {
        let e = &p.id;
        let obj_ty = aq.entities[&p.object].ty;
        conds.push(format!("{e}.subject = {}.id", p.subject));
        conds.push(format!("{e}.object = {}.id", p.object));
        conds.push(format!("{e}.kind = {}", sql_str(event_kind_for(obj_ty))));
        match &p.op {
            PatternOp::Event(op) => conds.push(op_to_sql(e, op)),
            PatternOp::Path { .. } => unreachable!(),
        }
        if let Some(f) = &p.event_filter {
            conds.push(attr_to_sql(e, f));
        }
        if let Some(w) = &p.window {
            conds.push(window_to_sql(e, w, ctx.now_ns)?);
        }
        for w in &aq.global_windows {
            conds.push(window_to_sql(e, w, ctx.now_ns)?);
        }
    }
    for id in &aq.entity_order {
        if let Some(f) = &aq.entities[id].filter {
            conds.push(attr_to_sql(id, f));
        }
    }
    for rel in &aq.relations {
        match rel {
            RelClause::Temporal { left, op, range, right } => {
                if range.is_some() || *op == TemporalOp::Within {
                    return Err(Error::semantic(
                        "giant SQL supports plain before/after only (see module docs)",
                    ));
                }
                match op {
                    TemporalOp::Before => {
                        conds.push(format!("{left}.starttime < {right}.starttime"))
                    }
                    TemporalOp::After => {
                        conds.push(format!("{left}.starttime > {right}.starttime"))
                    }
                    TemporalOp::Within => unreachable!(),
                }
            }
            RelClause::Attr { left, op, right } => {
                conds.push(format!("{left} {} {right}", op.as_str()));
            }
        }
    }
    if !conds.is_empty() {
        let _ = write!(sql, " WHERE {}", conds.join(" AND "));
    }
    Ok(sql)
}

/// Compiles the whole query into one giant Cypher statement (baseline "(d)").
pub fn giant_cypher(ctx: &CompileCtx<'_>) -> Result<String> {
    let aq = ctx.aq;
    let mut conds: Vec<String> = Vec::new();
    let mut frags: Vec<String> = Vec::new();
    for p in &aq.patterns {
        // Entity filters are emitted once per entity below, so strip them
        // here by temporarily compiling with the pattern only.
        let frag = cypher_pattern_fragment_no_entity_filters(ctx, p, &mut conds)?;
        frags.push(frag);
    }
    for id in &aq.entity_order {
        if let Some(f) = &aq.entities[id].filter {
            conds.push(attr_to_cypher(id, f));
        }
    }
    for rel in &aq.relations {
        match rel {
            RelClause::Temporal { left, op, range, right } => {
                if range.is_some() || *op == TemporalOp::Within {
                    return Err(Error::semantic(
                        "giant Cypher supports plain before/after only (see module docs)",
                    ));
                }
                match op {
                    TemporalOp::Before => {
                        conds.push(format!("{left}.starttime < {right}.starttime"))
                    }
                    TemporalOp::After => {
                        conds.push(format!("{left}.starttime > {right}.starttime"))
                    }
                    TemporalOp::Within => unreachable!(),
                }
            }
            RelClause::Attr { left, op, right } => {
                let op_str = if *op == CmpOp::Ne { "<>" } else { op.as_str() };
                conds.push(format!("{left} {op_str} {right}"));
            }
        }
    }
    let mut q = format!("MATCH {}", frags.join(", "));
    if !conds.is_empty() {
        let _ = write!(q, " WHERE {}", conds.join(" AND "));
    }
    let items: Vec<String> = aq.ret.iter().map(|r| format!("{}.{}", r.base, r.attr)).collect();
    let _ = write!(q, " RETURN {}{}", if aq.distinct { "DISTINCT " } else { "" }, items.join(", "));
    Ok(q)
}

// --- typed requests (the scheduled executor's parse-free path) ---

pub fn class_for_type(ty: EntityType) -> raptor_storage::EntityClass {
    match ty {
        EntityType::File => raptor_storage::EntityClass::File,
        EntityType::Proc => raptor_storage::EntityClass::Process,
        EntityType::Ip => raptor_storage::EntityClass::NetConn,
    }
}

fn storage_cmp_op(op: CmpOp) -> raptor_storage::CmpOp {
    match op {
        CmpOp::Eq => raptor_storage::CmpOp::Eq,
        CmpOp::Ne => raptor_storage::CmpOp::Ne,
        CmpOp::Lt => raptor_storage::CmpOp::Lt,
        CmpOp::Le => raptor_storage::CmpOp::Le,
        CmpOp::Gt => raptor_storage::CmpOp::Gt,
        CmpOp::Ge => raptor_storage::CmpOp::Ge,
    }
}

/// Interns a TBQL literal into the shared plane (parse-time interning: the
/// one place query strings become symbols).
fn storage_value(v: &Value, dict: &SharedDict) -> raptor_storage::Value {
    match v {
        Value::Int(i) => raptor_storage::Value::Int(*i),
        Value::Str(s) => raptor_storage::Value::Str(dict.intern(s)),
    }
}

/// Lowers a TBQL attribute expression to a typed predicate (same semantics
/// as the SQL lowering: `=`/`!=` against a `%` pattern means LIKE). String
/// literals are interned into `dict` here, so the emitted predicate carries
/// pre-interned symbols.
pub fn attr_pred(e: &AttrExpr, dict: &SharedDict) -> raptor_storage::Pred {
    use raptor_storage::Pred;
    match e {
        AttrExpr::Bare { .. } => unreachable!("analyzer desugars bare values"),
        AttrExpr::Cmp { attr, op, value } => {
            let attr = attr.attr.as_deref().unwrap_or(&attr.base).to_string();
            match (op, value) {
                (CmpOp::Eq, Value::Str(s)) if s.contains('%') => {
                    Pred::Like { attr, pattern: s.clone(), negated: false }
                }
                (CmpOp::Ne, Value::Str(s)) if s.contains('%') => {
                    Pred::Like { attr, pattern: s.clone(), negated: true }
                }
                _ => Pred::Cmp { attr, op: storage_cmp_op(*op), value: storage_value(value, dict) },
            }
        }
        AttrExpr::InSet { attr, negated, set } => Pred::InSet {
            attr: attr.attr.as_deref().unwrap_or(&attr.base).to_string(),
            negated: *negated,
            values: set.iter().map(|v| storage_value(v, dict)).collect(),
        },
        AttrExpr::And(a, b) => {
            Pred::And(Box::new(attr_pred(a, dict)), Box::new(attr_pred(b, dict)))
        }
        AttrExpr::Or(a, b) => Pred::Or(Box::new(attr_pred(a, dict)), Box::new(attr_pred(b, dict))),
    }
}

fn op_pred(e: &OpExpr, dict: &SharedDict) -> raptor_storage::Pred {
    use raptor_storage::Pred;
    match e {
        OpExpr::Op(name) => Pred::Cmp {
            attr: "optype".to_string(),
            op: raptor_storage::CmpOp::Eq,
            value: raptor_storage::Value::Str(dict.intern(name)),
        },
        OpExpr::Not(inner) => Pred::Not(Box::new(op_pred(inner, dict))),
        OpExpr::And(a, b) => Pred::And(Box::new(op_pred(a, dict)), Box::new(op_pred(b, dict))),
        OpExpr::Or(a, b) => Pred::Or(Box::new(op_pred(a, dict)), Box::new(op_pred(b, dict))),
    }
}

fn window_pred(w: &Window, now_ns: i64) -> Result<raptor_storage::Pred> {
    use raptor_storage::{CmpOp as SOp, Pred, Value as SVal};
    let cmp =
        |attr: &str, op: SOp, v: i64| Pred::Cmp { attr: attr.to_string(), op, value: SVal::Int(v) };
    Ok(match w {
        Window::FromTo(a, b) => Pred::And(
            Box::new(cmp("starttime", SOp::Ge, a.0)),
            Box::new(cmp("starttime", SOp::Le, b.0)),
        ),
        Window::At(t) => Pred::And(
            Box::new(cmp("starttime", SOp::Le, t.0)),
            Box::new(cmp("endtime", SOp::Ge, t.0)),
        ),
        Window::Before(t) => cmp("starttime", SOp::Lt, t.0),
        Window::After(t) => cmp("starttime", SOp::Gt, t.0),
        Window::Last { n, unit } => {
            let d = Duration::from_unit(*n, unit)
                .ok_or_else(|| Error::semantic(format!("unknown time unit `{unit}`")))?;
            cmp("starttime", SOp::Ge, now_ns.saturating_sub(d.0))
        }
    })
}

/// The typed form of [`entity_candidate_sql`].
pub fn entity_candidate_request(
    ty: EntityType,
    filter: &AttrExpr,
    dict: &SharedDict,
) -> (raptor_storage::EntityClass, raptor_storage::Pred) {
    (class_for_type(ty), attr_pred(filter, dict))
}

fn entity_sel(ctx: &CompileCtx<'_>, var: &str, prop: &Propagation) -> raptor_storage::EntitySel {
    let e = &ctx.aq.entities[var];
    raptor_storage::EntitySel {
        class: class_for_type(e.ty),
        filter: e.filter.as_ref().map(|f| attr_pred(f, &ctx.dict)),
        id_in: prop.in_list(var).map(<[i64]>::to_vec),
    }
}

/// Conjunction of the pattern's event-level predicates: operation, event
/// filter, per-pattern window, global windows.
fn event_conjuncts(
    ctx: &CompileCtx<'_>,
    p: &APattern,
    op: Option<&OpExpr>,
) -> Result<Vec<raptor_storage::Pred>> {
    let mut preds = Vec::new();
    if let Some(op) = op {
        preds.push(op_pred(op, &ctx.dict));
    }
    if let Some(f) = &p.event_filter {
        preds.push(attr_pred(f, &ctx.dict));
    }
    if let Some(w) = &p.window {
        preds.push(window_pred(w, ctx.now_ns)?);
    }
    for w in &ctx.aq.global_windows {
        preds.push(window_pred(w, ctx.now_ns)?);
    }
    Ok(preds)
}

/// Builds the typed request for one event pattern — the parse-free
/// counterpart of [`sql_for_event_pattern`].
pub fn event_pattern_request(
    ctx: &CompileCtx<'_>,
    p: &APattern,
    prop: &Propagation,
) -> Result<raptor_storage::EventPatternQuery> {
    let PatternOp::Event(op) = &p.op else {
        return Err(Error::semantic("path patterns build path requests, not event requests"));
    };
    Ok(raptor_storage::EventPatternQuery {
        subject: entity_sel(ctx, &p.subject, prop),
        object: entity_sel(ctx, &p.object, prop),
        event_pred: raptor_storage::Pred::and(event_conjuncts(ctx, p, Some(op))?),
        event_id_in: None,
        subject_is_object: p.subject == p.object,
    })
}

/// Builds the typed request for one path pattern — the parse-free
/// counterpart of [`cypher_for_path_pattern`].
pub fn path_pattern_request(
    ctx: &CompileCtx<'_>,
    p: &APattern,
    prop: &Propagation,
    hop_cap: u32,
) -> Result<raptor_storage::PathPatternQuery> {
    let PatternOp::Path { arrow, min, max, op } = &p.op else {
        return Err(Error::semantic("event patterns build event requests, not path requests"));
    };
    let (min_hops, max_hops) =
        if *arrow == raptor_tbql::Arrow::Single { (1, Some(1)) } else { (min.unwrap_or(1), *max) };
    // Mirrors the text compiler: path patterns constrain only the final
    // hop's operation (event filters and windows apply to event patterns).
    let final_hop_pred = op.as_ref().map(|o| op_pred(o, &ctx.dict));
    Ok(raptor_storage::PathPatternQuery {
        subject: entity_sel(ctx, &p.subject, prop),
        object: entity_sel(ctx, &p.object, prop),
        min_hops,
        max_hops,
        hop_cap,
        final_hop_pred,
        final_event_id_in: None,
        want_event: p.has_final_hop(),
        subject_is_object: p.subject == p.object,
    })
}

fn cypher_pattern_fragment_no_entity_filters(
    ctx: &CompileCtx<'_>,
    p: &APattern,
    conds: &mut Vec<String>,
) -> Result<String> {
    // Same as cypher_pattern_fragment but entity filters are handled by the
    // caller (to avoid duplicating them for reused entities).
    let subj = &ctx.aq.entities[&p.subject];
    let obj = &ctx.aq.entities[&p.object];
    let s_node = format!("({}:{})", p.subject, label_for_type(subj.ty));
    let o_node = format!("({}:{})", p.object, label_for_type(obj.ty));
    Ok(match &p.op {
        PatternOp::Event(op) => {
            conds.push(op_to_cypher(&p.id, op));
            if let Some(f) = &p.event_filter {
                conds.push(attr_to_cypher(&p.id, f));
            }
            if let Some(w) = &p.window {
                conds.push(window_to_cypher(&p.id, w, ctx.now_ns)?);
            }
            for w in &ctx.aq.global_windows {
                conds.push(window_to_cypher(&p.id, w, ctx.now_ns)?);
            }
            format!("{s_node}-[{}:EVENT]->{o_node}", p.id)
        }
        PatternOp::Path { arrow, min, max, op } => {
            path_fragment(p, *arrow, *min, *max, op.as_ref(), &s_node, &o_node, conds)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use raptor_tbql::{analyze, parse_tbql};

    fn ctx_for(text: &str) -> (AnalyzedQuery, i64) {
        let q = parse_tbql(text).unwrap();
        (analyze(&q).unwrap(), 1_000_000_000_000)
    }

    #[test]
    fn event_pattern_sql_shape() {
        let (aq, now) =
            ctx_for(r#"proc p1["%/bin/tar%"] read file f1["%/etc/passwd%"] as evt1 return p1, f1"#);
        let ctx = CompileCtx { aq: &aq, now_ns: now, dict: SharedDict::new() };
        let sql = sql_for_event_pattern(&ctx, &aq.patterns[0], &Propagation::default()).unwrap();
        assert!(sql.contains("FROM processes p1, events evt1, files f1"), "{sql}");
        assert!(sql.contains("evt1.subject = p1.id"), "{sql}");
        assert!(sql.contains("evt1.optype = 'read'"), "{sql}");
        assert!(sql.contains("p1.exename LIKE '%/bin/tar%'"), "{sql}");
        assert!(sql.contains("f1.name LIKE '%/etc/passwd%'"), "{sql}");
        assert!(sql.contains("evt1.kind = 'file'"), "{sql}");
        // Compiled SQL parses in the relational engine's dialect.
        assert!(raptor_relstore::sql::parse_select(&sql).is_ok(), "{sql}");
    }

    #[test]
    fn propagation_adds_in_filters() {
        let (aq, now) = ctx_for("proc p read file f as e1 return p, f");
        let ctx = CompileCtx { aq: &aq, now_ns: now, dict: SharedDict::new() };
        let mut prop = Propagation::default();
        prop.set("p", vec![3, 5, 9]);
        let sql = sql_for_event_pattern(&ctx, &aq.patterns[0], &prop).unwrap();
        assert!(sql.contains("p.id IN (3, 5, 9)"), "{sql}");
    }

    #[test]
    fn oversized_in_list_skipped() {
        let (aq, now) = ctx_for("proc p read file f as e1 return p, f");
        let ctx = CompileCtx { aq: &aq, now_ns: now, dict: SharedDict::new() };
        let mut prop = Propagation::default();
        prop.set("p", (0..(MAX_IN_LIST as i64 + 1)).collect());
        let sql = sql_for_event_pattern(&ctx, &aq.patterns[0], &prop).unwrap();
        assert!(!sql.contains("IN ("), "{sql}");
    }

    #[test]
    fn union_merges_sorted_distinct() {
        let mut prop = Propagation::default();
        prop.union("p", vec![3, 5, 9]);
        assert_eq!(prop.get("p"), Some(&[3, 5, 9][..]));
        prop.union("p", vec![1, 4, 9]);
        assert_eq!(prop.get("p"), Some(&[1, 3, 4, 5, 9][..]));
        prop.union("p", vec![]);
        assert_eq!(prop.get("p"), Some(&[1, 3, 4, 5, 9][..]));
    }

    /// Candidates arrive sorted-distinct from the backend
    /// (`entity_candidates` is the one canonicalization point — see the
    /// `candidates_sorted_distinct` backend test); propagation stores and
    /// emits them verbatim instead of re-sorting on every step.
    #[test]
    fn propagated_ids_emitted_canonically() {
        let (aq, now) = ctx_for("proc p read file f as e1 return p, f");
        let ctx = CompileCtx { aq: &aq, now_ns: now, dict: SharedDict::new() };
        let mut prop = Propagation::default();
        prop.set("p", vec![3, 5, 9]);
        let sql = sql_for_event_pattern(&ctx, &aq.patterns[0], &prop).unwrap();
        assert!(sql.contains("p.id IN (3, 5, 9)"), "{sql}");
        // Rows from match results (unsorted, duplicated) still canonicalize
        // through `intersect`'s set-when-absent path.
        prop.intersect("f", vec![9, 3, 5, 3, 9, 9]);
        assert_eq!(prop.get("f"), Some(&[3, 5, 9][..]));
    }

    #[test]
    #[should_panic(expected = "sorted-distinct")]
    #[cfg(debug_assertions)]
    fn propagation_set_rejects_unsorted_in_debug() {
        let mut prop = Propagation::default();
        prop.set("p", vec![9, 3, 5]);
    }

    #[test]
    fn propagation_intersects() {
        let mut prop = Propagation::default();
        prop.set("p", vec![1, 2, 3, 4]);
        prop.intersect("p", vec![4, 2, 9]);
        assert_eq!(prop.get("p"), Some(&[2, 4][..]));
        prop.intersect("q", vec![5, 5, 1]);
        assert_eq!(prop.get("q"), Some(&[1, 5][..]));
    }

    #[test]
    fn typed_event_request_mirrors_sql() {
        let (aq, now) =
            ctx_for(r#"proc p1["%/bin/tar%"] read file f1["%/etc/passwd%"] as evt1 return p1, f1"#);
        let ctx = CompileCtx { aq: &aq, now_ns: now, dict: SharedDict::new() };
        let mut prop = Propagation::default();
        prop.set("p1", vec![3, 5]);
        let req = event_pattern_request(&ctx, &aq.patterns[0], &prop).unwrap();
        assert_eq!(req.subject.class, raptor_storage::EntityClass::Process);
        assert_eq!(req.object.class, raptor_storage::EntityClass::File);
        assert_eq!(req.subject.id_in.as_deref(), Some(&[3, 5][..]));
        assert!(matches!(
            req.subject.filter,
            Some(raptor_storage::Pred::Like { ref pattern, negated: false, .. })
                if pattern == "%/bin/tar%"
        ));
        assert!(req.event_pred.is_some());
    }

    #[test]
    fn typed_path_request_shape() {
        let (aq, now) = ctx_for(r#"proc p["%tar%"] ~>(2~4)[read] file f as e1 return p, f"#);
        let ctx = CompileCtx { aq: &aq, now_ns: now, dict: SharedDict::new() };
        let req = path_pattern_request(&ctx, &aq.patterns[0], &Propagation::default(), 8).unwrap();
        assert_eq!((req.min_hops, req.max_hops, req.hop_cap), (2, Some(4), 8));
        assert!(!req.want_event, "variable-length paths bind no single event");
        assert!(req.final_hop_pred.is_some());
    }

    #[test]
    fn path_pattern_cypher_shape() {
        let (aq, now) = ctx_for(r#"proc p["%tar%"] ~>(2~4)[read] file f as e1 return p, f"#);
        let ctx = CompileCtx { aq: &aq, now_ns: now, dict: SharedDict::new() };
        let cy = cypher_for_path_pattern(&ctx, &aq.patterns[0], &Propagation::default()).unwrap();
        assert!(cy.contains("(p:Process)-[:EVENT*1..3]->(_m0)-[e1:EVENT]->(f:File)"), "{cy}");
        assert!(cy.contains("e1.optype = 'read'"), "{cy}");
        assert!(cy.contains("p.exename CONTAINS 'tar'"), "{cy}");
        assert!(cy.contains("RETURN DISTINCT p.id, f.id"), "{cy}");
        assert!(raptor_graphstore::cypher::parse_cypher(&cy).is_ok(), "{cy}");
    }

    #[test]
    fn length_one_path_is_single_hop() {
        let (aq, now) = ctx_for("proc p ->[read] file f as e1 return p, f");
        let ctx = CompileCtx { aq: &aq, now_ns: now, dict: SharedDict::new() };
        let cy = cypher_for_path_pattern(&ctx, &aq.patterns[0], &Propagation::default()).unwrap();
        // `->` parses with no explicit bounds: compiled as open-ended from
        // the analyzer's perspective? No: Arrow::Single defaults min=max=1.
        assert!(cy.contains("-[") && cy.contains("EVENT"), "{cy}");
        assert!(raptor_graphstore::cypher::parse_cypher(&cy).is_ok(), "{cy}");
    }

    #[test]
    fn giant_sql_covers_everything() {
        let (aq, now) = ctx_for(raptor_tbql::parser::FIG2_QUERY);
        let ctx = CompileCtx { aq: &aq, now_ns: now, dict: SharedDict::new() };
        let sql = giant_sql(&ctx).unwrap();
        // 9 entities + 8 event aliases in FROM.
        assert_eq!(sql.matches("events evt").count(), 8, "{sql}");
        assert!(sql.contains("SELECT DISTINCT p1.exename"), "{sql}");
        assert!(sql.contains("evt1.starttime < evt2.starttime"), "{sql}");
        assert!(raptor_relstore::sql::parse_select(&sql).is_ok(), "{sql}");
    }

    #[test]
    fn giant_sql_rejects_paths_and_ranges() {
        let (aq, now) = ctx_for("proc p ~>[read] file f return p, f");
        let ctx = CompileCtx { aq: &aq, now_ns: now, dict: SharedDict::new() };
        assert!(giant_sql(&ctx).is_err());
        let (aq, now) = ctx_for(
            "proc p read file f as e1 proc p write file g as e2 with e1 before[0-5 min] e2 return f",
        );
        let ctx = CompileCtx { aq: &aq, now_ns: now, dict: SharedDict::new() };
        assert!(giant_sql(&ctx).is_err());
    }

    #[test]
    fn giant_cypher_covers_everything() {
        let (aq, now) = ctx_for(raptor_tbql::parser::FIG2_QUERY);
        let ctx = CompileCtx { aq: &aq, now_ns: now, dict: SharedDict::new() };
        let cy = giant_cypher(&ctx).unwrap();
        assert_eq!(cy.matches(":EVENT]").count(), 8, "{cy}");
        assert!(cy.contains("RETURN DISTINCT p1.exename"), "{cy}");
        // Entity filter appears once even though p1 is used twice.
        assert_eq!(cy.matches("p1.exename CONTAINS '/bin/tar'").count(), 1, "{cy}");
        assert!(raptor_graphstore::cypher::parse_cypher(&cy).is_ok(), "{cy}");
    }

    #[test]
    fn windows_compile() {
        let (aq, _) = ctx_for("proc p read file f as e1 last 2 h return f");
        let ctx = CompileCtx { aq: &aq, now_ns: 10_000_000_000_000, dict: SharedDict::new() };
        let sql = sql_for_event_pattern(&ctx, &aq.patterns[0], &Propagation::default()).unwrap();
        let cutoff = 10_000_000_000_000i64 - 7200 * 1_000_000_000;
        assert!(sql.contains(&format!("e1.starttime >= {cutoff}")), "{sql}");
    }

    #[test]
    fn string_escaping() {
        let (aq, now) = ctx_for(r#"proc p["%o'brien%"] read file f return f"#);
        let ctx = CompileCtx { aq: &aq, now_ns: now, dict: SharedDict::new() };
        let sql = sql_for_event_pattern(&ctx, &aq.patterns[0], &Propagation::default()).unwrap();
        assert!(sql.contains("'%o''brien%'"), "{sql}");
        assert!(raptor_relstore::sql::parse_select(&sql).is_ok(), "{sql}");
    }
}
