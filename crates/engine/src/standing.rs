//! Standing queries — continuous evaluation over a growing store.
//!
//! A [`StandingQuery`] is a compiled TBQL query registered *once* and then
//! re-evaluated per ingestion epoch with **delta evaluation**:
//!
//! * each event pattern (and each length-1 path pattern) is matched only
//!   against the epoch's freshly ingested events, via the typed requests'
//!   `event_id_in` / `final_event_id_in` restriction — per-epoch data-query
//!   cost tracks the epoch size, not the store size,
//! * per-pattern match sets **accumulate** across epochs, and the
//!   filter-derived [`Propagation`] candidate sets grow monotonically
//!   (delta-seeded from each epoch's new entity-id range, then unioned)
//!   instead of being recomputed,
//! * variable-length path patterns are matched **delta-incrementally**
//!   through a cached [`PathFrontier`]: each epoch's new edges extend the
//!   per-query min-distance frontier (and retro-seed walks passing through
//!   them) instead of re-walking the graph, so per-epoch cost tracks the
//!   epoch size. Shapes outside the frontier's equivalence envelope — and
//!   every path pattern when `RAPTOR_PATH_CATALOG=0` — fall back to full
//!   re-evaluation each epoch (their match set is *replaced*, which is
//!   still monotone on a grow-only store). Either way the accumulated match
//!   list is kept canonically sorted, so emitted deltas are byte-identical
//!   whichever path ran,
//! * the cross-pattern join, `with`-clause constraints, and projection then
//!   run in memory over the accumulated match sets (the same
//!   `join_project` stage one-shot scheduled execution uses), and the
//!   result is diffed against everything already emitted.
//!
//! The delta invariant, asserted by the streaming equivalence tests: after
//! any sequence of epochs, the concatenation of all emitted deltas equals —
//! as a multiset of rows — the result of executing the same query in
//! `ExecMode::Scheduled` over the fully loaded store. Scheduled batch
//! execution's intersection-based propagation is *not* used here (an entity
//! unmatched today may match tomorrow); the entity filters themselves are
//! still pushed into every data query, so candidate sets only ever prune,
//! never decide, correctness.

use std::sync::atomic::{AtomicI64, Ordering};

use raptor_common::error::{Error, Result};
use raptor_common::hash::FxHashMap;
use raptor_common::intern::SharedDict;
use raptor_common::{io, obs};
use raptor_graphstore::PathFrontier;
use raptor_storage::{CmpOp as SOp, Pred, ResultBatch, Value as SVal};
use raptor_tbql::analyze::AnalyzedQuery;
use raptor_tbql::Window;

use crate::compile::{
    attr_pred, class_for_type, event_pattern_request, path_pattern_request, Propagation,
};
use crate::exec::{matches_to_rows, DataPath, Engine, EngineStats, Match, QueryKind};

/// What one ingestion epoch contributed, as the standing-query evaluator
/// needs to see it.
#[derive(Clone, Copy, Debug)]
pub struct EpochInput<'a> {
    /// Epoch sequence number (informational; drives first-match reporting).
    pub epoch: u64,
    /// Entity ids ingested this epoch as the half-open range `[lo, hi)` —
    /// entities are append-only and dense, so a range suffices.
    pub entity_range: (i64, i64),
    /// Event ids ingested this epoch (sorted, distinct; *not* necessarily
    /// contiguous — ingestion order is the stream's, not the log's).
    pub event_ids: &'a [i64],
}

/// Process-wide count of cached frontier distance entries, maintained by
/// every live standing query (the `raptor_path_frontier_entries` gauge).
static FRONTIER_ENTRIES: AtomicI64 = AtomicI64::new(0);

/// Total cached `(node, anchor)` frontier entries across all live standing
/// queries. `ThreatRaptor::metrics()` and the stream session publish this as
/// the `raptor_path_frontier_entries` gauge.
pub fn frontier_entries_total() -> i64 {
    FRONTIER_ENTRIES.load(Ordering::Relaxed)
}

/// Per-pattern frontier cache state.
enum FrontierSlot {
    /// Not yet decided — building the frontier needs the compiled request,
    /// which needs the engine, so it happens on the first advance.
    Unknown,
    /// Ineligible pattern shape, or the path-catalog plane is disabled
    /// (`RAPTOR_PATH_CATALOG=0`): full re-evaluation every epoch.
    Off,
    On(Box<PathFrontier>),
}

/// Builds (or refuses) the frontier for one path pattern, applying any
/// checkpoint-restored state blob and marking already-accumulated matches
/// as emitted.
fn build_frontier(
    req: &raptor_storage::PathPatternQuery,
    dict: &SharedDict,
    pending: &mut Option<Vec<u8>>,
    matches: &[Match],
) -> Result<FrontierSlot> {
    if !raptor_storage::path_catalog_enabled() {
        return Ok(FrontierSlot::Off);
    }
    match PathFrontier::new(req, dict)? {
        Some(mut f) => {
            if let Some(blob) = pending.take() {
                f.decode(&mut io::Cur::new(&blob))?;
            }
            f.seed_seen(matches.iter().map(|m| (m.subj, m.obj)));
            Ok(FrontierSlot::On(Box::new(f)))
        }
        None => Ok(FrontierSlot::Off),
    }
}

/// Per-pattern progress of a standing query.
#[derive(Clone, Debug)]
pub struct PatternProgress {
    /// The pattern id (`as evtN` / generated `_evtN`).
    pub id: String,
    /// Accumulated matches so far.
    pub matches: usize,
    /// Epoch at which the pattern first matched, if it ever has.
    pub first_match_epoch: Option<u64>,
}

/// A registered query plus its accumulated evaluation state.
pub struct StandingQuery {
    name: String,
    aq: AnalyzedQuery,
    /// The shared dictionary plane of the engine this query runs against
    /// (emitted batches carry it; the multiset diff keys on its symbols).
    dict: SharedDict,
    /// Accumulated per-pattern matches (index-aligned with `aq.patterns`).
    matches: Vec<Vec<Match>>,
    /// Per-pattern: this pattern is delta-evaluable (event pattern or
    /// length-1 path). Others go through the frontier cache or re-evaluate
    /// fully each epoch.
    delta_ok: Vec<bool>,
    /// Per-pattern cached path frontiers (index-aligned with `aq.patterns`).
    frontiers: Vec<FrontierSlot>,
    /// Checkpoint-restored frontier state blobs, applied when the matching
    /// frontier is built at the next advance.
    pending_frontier: Vec<Option<Vec<u8>>>,
    /// Last frontier-entry count reported into [`FRONTIER_ENTRIES`].
    reported_entries: i64,
    /// Monotone filter-derived candidate sets.
    prop: Propagation,
    /// Multiset of rows already emitted across all epochs.
    emitted: FxHashMap<Vec<SVal>, usize>,
    /// Every emitted row, in emission order (the cumulative view).
    cumulative: Vec<Vec<SVal>>,
    columns: Vec<String>,
    first_match_epoch: Vec<Option<u64>>,
}

impl StandingQuery {
    /// Compiles a standing query. Rejects relative `last N unit` windows:
    /// they are anchored to `now_ns`, which advances with every epoch's
    /// watermark, so matches accepted early could not be retracted later —
    /// the delta invariant (concatenated deltas == batch result) would
    /// silently break. Absolute windows (`from/to`, `at`, `before`,
    /// `after`) are fine.
    pub fn new(name: impl Into<String>, aq: AnalyzedQuery, dict: SharedDict) -> Result<Self> {
        let relative = |w: &Window| matches!(w, Window::Last { .. });
        if aq.patterns.iter().filter_map(|p| p.window.as_ref()).any(relative)
            || aq.global_windows.iter().any(relative)
        {
            return Err(Error::semantic(
                "standing queries do not support relative `last N unit` windows \
                 (the reference point moves with the stream's watermark)",
            ));
        }
        let columns = aq.ret.iter().map(|r| format!("{}.{}", r.base, r.attr)).collect();
        let n = aq.patterns.len();
        let delta_ok = aq.patterns.iter().map(|p| !p.is_path() || p.has_final_hop()).collect();
        Ok(StandingQuery {
            name: name.into(),
            aq,
            dict,
            matches: vec![Vec::new(); n],
            delta_ok,
            frontiers: (0..n).map(|_| FrontierSlot::Unknown).collect(),
            pending_frontier: vec![None; n],
            reported_entries: 0,
            prop: Propagation::default(),
            emitted: FxHashMap::default(),
            cumulative: Vec::new(),
            columns,
            first_match_epoch: vec![None; n],
        })
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn query(&self) -> &AnalyzedQuery {
        &self.aq
    }

    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Per-pattern accumulated state (for live-hunt displays).
    pub fn progress(&self) -> Vec<PatternProgress> {
        self.aq
            .patterns
            .iter()
            .map(|p| PatternProgress {
                id: p.id.clone(),
                matches: self.matches[p.index].len(),
                first_match_epoch: self.first_match_epoch[p.index],
            })
            .collect()
    }

    /// Every row emitted so far, in emission order. After the final epoch
    /// this equals (as a multiset) the one-shot `ExecMode::Scheduled`
    /// result over the same data.
    pub fn cumulative_batch(&self) -> ResultBatch {
        ResultBatch::from_rows(self.columns.clone(), self.cumulative.clone(), self.dict.clone())
    }

    /// Serializes the accumulated evaluation state (durability plane's
    /// checkpoint codec). The compiled query itself is *not* serialized —
    /// recovery re-analyzes the registered TBQL text and then restores this
    /// state into the fresh compilation, so `delta_ok`/`columns` are always
    /// re-derived, and `emitted` is rebuilt from `cumulative`. Symbols in
    /// emitted rows refer to the shared dictionary, which the checkpoint
    /// restores first, pinning them.
    pub fn encode_state(&self, buf: &mut Vec<u8>) {
        io::put_u64(buf, self.matches.len() as u64);
        for (pm, first) in self.matches.iter().zip(&self.first_match_epoch) {
            io::put_u64(buf, pm.len() as u64);
            for m in pm {
                io::put_i64(buf, m.subj);
                io::put_i64(buf, m.obj);
                io::put_i64(buf, m.evt);
                io::put_i64(buf, m.start);
                io::put_i64(buf, m.end);
            }
            match first {
                Some(e) => {
                    io::put_u8(buf, 1);
                    io::put_u64(buf, *e);
                }
                None => io::put_u8(buf, 0),
            }
        }
        // Candidate sets, sorted by variable for a deterministic encoding.
        let mut entries: Vec<(&str, &[i64])> = self.prop.iter().collect();
        entries.sort_by_key(|(var, _)| *var);
        io::put_u64(buf, entries.len() as u64);
        for (var, ids) in entries {
            io::put_str(buf, var);
            io::put_u64(buf, ids.len() as u64);
            for id in ids {
                io::put_i64(buf, *id);
            }
        }
        io::put_u64(buf, self.cumulative.len() as u64);
        io::put_u64(buf, self.columns.len() as u64);
        for row in &self.cumulative {
            for v in row {
                match v {
                    SVal::Null => io::put_u8(buf, 0),
                    SVal::Int(i) => {
                        io::put_u8(buf, 1);
                        io::put_i64(buf, *i);
                    }
                    SVal::Str(s) => {
                        io::put_u8(buf, 2);
                        io::put_u32(buf, s.0);
                    }
                }
            }
        }
    }

    /// Restores state written by [`StandingQuery::encode_state`] into a
    /// freshly-compiled query of the same TBQL text over the restored
    /// dictionary. Corrupt input yields a typed error, never a panic.
    pub fn decode_state(&mut self, cur: &mut io::Cur<'_>) -> Result<()> {
        let n_patterns = cur.get_len()?;
        if n_patterns != self.aq.patterns.len() {
            return Err(Error::storage(format!(
                "standing state has {n_patterns} patterns, query `{}` has {}",
                self.name,
                self.aq.patterns.len()
            )));
        }
        let mut matches = Vec::with_capacity(n_patterns);
        let mut first = Vec::with_capacity(n_patterns);
        for _ in 0..n_patterns {
            let n = cur.get_len()?;
            let mut pm = Vec::with_capacity(n);
            for _ in 0..n {
                pm.push(Match {
                    subj: cur.get_i64()?,
                    obj: cur.get_i64()?,
                    evt: cur.get_i64()?,
                    start: cur.get_i64()?,
                    end: cur.get_i64()?,
                });
            }
            matches.push(pm);
            first.push(match cur.get_u8()? {
                0 => None,
                1 => Some(cur.get_u64()?),
                other => {
                    return Err(Error::storage(format!("invalid option tag {other}")));
                }
            });
        }
        let mut prop = Propagation::default();
        for _ in 0..cur.get_len()? {
            let var = cur.get_str()?;
            let n = cur.get_len()?;
            let mut ids = Vec::with_capacity(n);
            for _ in 0..n {
                ids.push(cur.get_i64()?);
            }
            if !ids.windows(2).all(|w| w[0] < w[1]) {
                return Err(Error::storage("candidate ids not sorted-distinct (corrupt state)"));
            }
            prop.set(var, ids);
        }
        let n_rows = cur.get_len()?;
        let arity = cur.get_len()?;
        if arity != self.columns.len() {
            return Err(Error::storage(format!(
                "standing state arity {arity} != query arity {}",
                self.columns.len()
            )));
        }
        let n_syms = self.dict.len() as u32;
        let mut cumulative = Vec::with_capacity(n_rows);
        let mut emitted: FxHashMap<Vec<SVal>, usize> = FxHashMap::default();
        for _ in 0..n_rows {
            let mut row = Vec::with_capacity(arity);
            for _ in 0..arity {
                row.push(match cur.get_u8()? {
                    0 => SVal::Null,
                    1 => SVal::Int(cur.get_i64()?),
                    2 => {
                        let s = cur.get_u32()?;
                        if s >= n_syms {
                            return Err(Error::storage(format!(
                                "symbol {s} out of dictionary range {n_syms}"
                            )));
                        }
                        SVal::Str(raptor_common::Sym(s))
                    }
                    other => {
                        return Err(Error::storage(format!("invalid value tag {other}")));
                    }
                });
            }
            *emitted.entry(row.clone()).or_insert(0) += 1;
            cumulative.push(row);
        }
        self.matches = matches;
        self.first_match_epoch = first;
        self.prop = prop;
        self.cumulative = cumulative;
        self.emitted = emitted;
        Ok(())
    }

    /// Serializes the cached frontier state (the checkpoint's version-2
    /// section). Patterns without an active frontier write an absent marker;
    /// restored-but-not-yet-rebuilt blobs pass through unchanged, so
    /// checkpointing a freshly restored session loses nothing.
    pub fn encode_frontier_state(&self, buf: &mut Vec<u8>) {
        io::put_u64(buf, self.frontiers.len() as u64);
        for (slot, pending) in self.frontiers.iter().zip(&self.pending_frontier) {
            let blob = match slot {
                FrontierSlot::On(f) => {
                    let mut b = Vec::new();
                    f.encode(&mut b);
                    Some(b)
                }
                _ => pending.clone(),
            };
            match blob {
                Some(b) => {
                    io::put_u8(buf, 1);
                    io::put_u64(buf, b.len() as u64);
                    buf.extend_from_slice(&b);
                }
                None => io::put_u8(buf, 0),
            }
        }
    }

    /// Restores state written by [`StandingQuery::encode_frontier_state`].
    /// The blobs are stashed and validated when the frontiers are rebuilt at
    /// the next advance (their specs need the engine's compiled requests).
    pub fn decode_frontier_state(&mut self, cur: &mut io::Cur<'_>) -> Result<()> {
        let n = cur.get_len()?;
        if n != self.aq.patterns.len() {
            return Err(Error::storage(format!(
                "frontier state has {n} patterns, query `{}` has {}",
                self.name,
                self.aq.patterns.len()
            )));
        }
        for i in 0..n {
            self.pending_frontier[i] = match cur.get_u8()? {
                0 => None,
                1 => {
                    let len = cur.get_len()?;
                    Some(cur.get_bytes(len)?.to_vec())
                }
                other => {
                    return Err(Error::storage(format!("invalid frontier tag {other}")));
                }
            };
        }
        Ok(())
    }

    /// Publishes this query's frontier-entry count into the process-wide
    /// gauge as a delta against what it last reported.
    fn sync_frontier_entries(&mut self) {
        let now: i64 = self
            .frontiers
            .iter()
            .map(|s| match s {
                FrontierSlot::On(f) => f.entries() as i64,
                _ => 0,
            })
            .sum();
        FRONTIER_ENTRIES.fetch_add(now - self.reported_entries, Ordering::Relaxed);
        self.reported_entries = now;
    }

    /// Delta-seeds the filter-derived candidate sets from this epoch's new
    /// entity-id range and unions them into the monotone propagation state.
    fn seed_delta(
        &mut self,
        engine: &Engine,
        input: &EpochInput<'_>,
        stats: &mut EngineStats,
    ) -> Result<()> {
        let (lo, hi) = input.entity_range;
        if lo >= hi {
            return Ok(());
        }
        let range = Pred::And(
            Box::new(Pred::Cmp { attr: "id".into(), op: SOp::Ge, value: SVal::Int(lo) }),
            Box::new(Pred::Cmp { attr: "id".into(), op: SOp::Lt, value: SVal::Int(hi) }),
        );
        for id in &self.aq.entity_order {
            let e = &self.aq.entities[id];
            let Some(filter) = &e.filter else { continue };
            let pred = Pred::And(Box::new(attr_pred(filter, &self.dict)), Box::new(range.clone()));
            let ids =
                engine.rel().entity_candidates(class_for_type(e.ty), &pred, &mut stats.backend)?;
            stats.record("relational", QueryKind::Seed, id, 0);
            self.prop.union(id, ids);
        }
        Ok(())
    }

    /// Advances the standing query by one ingestion epoch, returning the
    /// *delta* of result rows this epoch produced (possibly empty) plus the
    /// execution stats of the re-evaluation.
    pub fn advance(
        &mut self,
        engine: &Engine,
        input: &EpochInput<'_>,
    ) -> Result<(ResultBatch, EngineStats)> {
        let mut sp = raptor_common::obs::span("stream.standing");
        sp.label(&self.name);
        sp.attr("epoch", input.epoch);
        sp.attr("events", input.event_ids.len() as u64);
        let mut stats = EngineStats::default();
        self.seed_delta(engine, input, &mut stats)?;

        // Delta-match each pattern against the epoch's new events. An epoch
        // without events cannot create matches (new entities alone carry no
        // edges), so skip the data queries entirely.
        let mut changed = false;
        if !input.event_ids.is_empty() {
            let ctx = engine.ctx(&self.aq);
            for p in &self.aq.patterns {
                if self.delta_ok[p.index] {
                    let delta = if p.is_path() {
                        let mut req = path_pattern_request(&ctx, p, &self.prop, engine.max_hops)?;
                        req.final_event_id_in = Some(input.event_ids.to_vec());
                        let m = engine.graph().match_path_pattern(&req, &mut stats.backend)?;
                        stats.record("graph", QueryKind::PathPattern, &p.id, 1);
                        matches_to_rows(&m)
                    } else {
                        let mut req = event_pattern_request(&ctx, p, &self.prop)?;
                        req.event_id_in = Some(input.event_ids.to_vec());
                        let m = engine.rel().match_event_pattern(&req, &mut stats.backend)?;
                        stats.record("relational", QueryKind::EventPattern, &p.id, 1);
                        matches_to_rows(&m)
                    };
                    changed |= !delta.is_empty();
                    self.matches[p.index].extend(delta);
                } else {
                    // Variable-length path: delta-incremental through the
                    // cached frontier when the shape allows it, full
                    // re-evaluation otherwise.
                    let req = path_pattern_request(&ctx, p, &self.prop, engine.max_hops)?;
                    if matches!(self.frontiers[p.index], FrontierSlot::Unknown) {
                        self.frontiers[p.index] = build_frontier(
                            &req,
                            &self.dict,
                            &mut self.pending_frontier[p.index],
                            &self.matches[p.index],
                        )?;
                    }
                    if let FrontierSlot::On(f) = &mut self.frontiers[p.index] {
                        let mut fsp = raptor_common::obs::span("standing.frontier");
                        fsp.label(&p.id);
                        let pairs = f.advance(&engine.stores.graph);
                        fsp.attr("new_pairs", pairs.len() as u64);
                        fsp.attr("entries", f.entries() as u64);
                        obs::metrics().counter_add("raptor_path_frontier_hits_total", 1);
                        changed |= !pairs.is_empty();
                        self.matches[p.index].extend(pairs.into_iter().map(|(subj, obj)| Match {
                            subj,
                            obj,
                            evt: -1,
                            start: 0,
                            end: 0,
                        }));
                    } else {
                        obs::metrics().counter_add("raptor_path_frontier_misses_total", 1);
                        let m = engine.graph().match_path_pattern(&req, &mut stats.backend)?;
                        stats.record("graph", QueryKind::PathPattern, &p.id, 0);
                        let rows = matches_to_rows(&m);
                        changed |= rows.len() != self.matches[p.index].len();
                        self.matches[p.index] = rows;
                    }
                    // Canonical order: the frontier accumulates and full
                    // re-evaluation replaces, in different orders — sorting
                    // both keeps emitted deltas byte-identical whichever
                    // path ran (the catalog on/off determinism contract).
                    self.matches[p.index]
                        .sort_unstable_by_key(|r| (r.subj, r.obj, r.evt, r.start, r.end));
                }
                if !self.matches[p.index].is_empty() && self.first_match_epoch[p.index].is_none() {
                    self.first_match_epoch[p.index] = Some(input.epoch);
                }
            }
        }
        self.sync_frontier_entries();

        // A query only produces rows once every pattern has matched; and an
        // epoch that changed nothing cannot emit new rows.
        if !changed || self.matches.iter().any(Vec::is_empty) {
            return Ok((
                ResultBatch::from_rows(self.columns.clone(), Vec::new(), self.dict.clone()),
                stats,
            ));
        }

        // Join + with-clauses + projection over the *accumulated* matches,
        // then emit only what the multiset of prior emissions lacks.
        let pattern_rows: Vec<&Vec<Match>> = self.matches.iter().collect();
        let full = engine.join_project(&self.aq, &pattern_rows, &mut stats, DataPath::Typed)?;
        let mut fresh: FxHashMap<Vec<SVal>, usize> = FxHashMap::default();
        let mut delta_rows: Vec<Vec<SVal>> = Vec::new();
        for i in 0..full.n_rows() {
            let row = full.row(i);
            let seen_now = fresh.entry(row.clone()).or_insert(0);
            *seen_now += 1;
            let already = self.emitted.get(&row).copied().unwrap_or(0);
            if *seen_now > already {
                delta_rows.push(row);
            }
        }
        for row in &delta_rows {
            *self.emitted.entry(row.clone()).or_insert(0) += 1;
            self.cumulative.push(row.clone());
        }
        Ok((ResultBatch::from_rows(self.columns.clone(), delta_rows, self.dict.clone()), stats))
    }
}

impl Drop for StandingQuery {
    fn drop(&mut self) {
        FRONTIER_ENTRIES.fetch_sub(self.reported_entries, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ExecMode;
    use crate::load::{self, load};
    use raptor_audit::sim::Simulator;
    use raptor_audit::LogParser;
    use raptor_common::time::Timestamp;
    use raptor_tbql::{analyze, parse_tbql};

    fn sample_log() -> raptor_audit::ParsedLog {
        let mut sim = Simulator::new(5, Timestamp::from_secs(1000));
        let shell = sim.boot_process("/bin/bash", "root");
        let tar = sim.spawn(shell, "/bin/tar", "tar cf /tmp/upload.tar");
        sim.read_file(tar, "/etc/passwd", 4096, 4);
        sim.write_file(tar, "/tmp/upload.tar", 4096, 2);
        let curl = sim.spawn(shell, "/usr/bin/curl", "curl");
        let fd = sim.connect(curl, "192.168.29.128", 443);
        sim.send(curl, fd, 1024, 2);
        sim.exit(curl);
        sim.exit(tar);
        LogParser::parse(&sim.finish())
    }

    fn standing(q: &str, engine: &Engine) -> StandingQuery {
        StandingQuery::new(
            "t",
            analyze(&parse_tbql(q).unwrap()).unwrap(),
            engine.stores.dict.clone(),
        )
        .unwrap()
    }

    /// Relative windows are anchored to a moving watermark; rejected.
    #[test]
    fn relative_windows_rejected() {
        let q = "proc p read file f as e1 last 5 minute return p, f";
        let aq = analyze(&parse_tbql(q).unwrap()).unwrap();
        let err = match StandingQuery::new("t", aq, SharedDict::new()) {
            Err(e) => e,
            Ok(_) => panic!("relative window must be rejected"),
        };
        assert!(err.to_string().contains("last"), "{err}");
        // Absolute windows stay allowed.
        let q = "proc p read file f as e1 after 10 return p, f";
        let aq = analyze(&parse_tbql(q).unwrap()).unwrap();
        assert!(StandingQuery::new("t", aq, SharedDict::new()).is_ok());
    }

    /// Feeds the log one event per epoch; the concatenated deltas must
    /// equal the one-shot scheduled result.
    #[test]
    fn one_event_epochs_reach_batch_result() {
        let log = sample_log();
        let q = r#"proc p["%/bin/tar%"] read file f["%/etc/passwd%"] as e1
                   proc p write file f2["%upload%"] as e2
                   with e1 before e2 return p, f, f2"#;

        let mut stores = load::empty().unwrap();
        let mut stats = raptor_storage::BackendStats::default();
        for e in &log.entities {
            load::append_entity(&mut stores, e, &mut stats).unwrap();
        }
        let mut engine = Engine::new(stores);
        let mut sq = standing(q, &engine);
        let mut emitted = 0usize;
        for (i, ev) in log.events.iter().enumerate() {
            // Entities were pre-loaded: only epoch 0 sees the full range.
            let range = if i == 0 { (0, log.entities.len() as i64) } else { (0, 0) };
            let mut stats = raptor_storage::BackendStats::default();
            load::append_event(&mut engine.stores, ev, &mut stats).unwrap();
            assert_eq!(stats.items_inserted, 2, "one row + one edge");
            let input = EpochInput {
                epoch: i as u64,
                entity_range: range,
                event_ids: &[ev.id.index() as i64],
            };
            let (delta, estats) = sq.advance(&engine, &input).unwrap();
            assert_eq!(estats.text_parses, 0, "standing path must stay parse-free");
            emitted += delta.n_rows();
        }
        let batch = Engine::new(load(&log).unwrap());
        let aq = analyze(&parse_tbql(q).unwrap()).unwrap();
        let (expect, _) = batch.execute(&aq, ExecMode::Scheduled).unwrap();
        let got = crate::exec::ResultTable::from_batch(&sq.cumulative_batch());
        assert_eq!(got.sorted_rows(), expect.sorted_rows());
        assert_eq!(emitted, expect.rows.len());
    }

    /// Per-pattern first-match epochs are reported as patterns light up.
    #[test]
    fn first_match_epochs_reported() {
        let log = sample_log();
        let q = r#"proc p["%tar%"] read file f["%passwd%"] as e1 return p, f"#;
        let mut engine = Engine::new(load::empty().unwrap());
        let mut stats = raptor_storage::BackendStats::default();
        for e in &log.entities {
            load::append_entity(&mut engine.stores, e, &mut stats).unwrap();
        }
        let mut sq = standing(q, &engine);
        for (i, ev) in log.events.iter().enumerate() {
            let range = if i == 0 { (0, log.entities.len() as i64) } else { (0, 0) };
            let mut st = raptor_storage::BackendStats::default();
            load::append_event(&mut engine.stores, ev, &mut st).unwrap();
            let input = EpochInput {
                epoch: i as u64,
                entity_range: range,
                event_ids: &[ev.id.index() as i64],
            };
            sq.advance(&engine, &input).unwrap();
        }
        let progress = sq.progress();
        assert_eq!(progress.len(), 1);
        assert!(progress[0].matches >= 1);
        // tar reads /etc/passwd somewhere mid-log, not at epoch 0 (the
        // first events are process starts).
        let first = progress[0].first_match_epoch.unwrap();
        assert!(first > 0, "{progress:?}");
    }
}
