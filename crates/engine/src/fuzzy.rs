//! Fuzzy search: Poirot-style inexact graph pattern matching.
//!
//! A TBQL query specifies a subgraph of system events; the fuzzy mode aligns
//! it against the provenance graph (Section III-F):
//!
//! * **node alignment** — Levenshtein similarity between IOC strings in the
//!   query and entity attributes, so typos or small IOC changes still
//!   retrieve the right entities,
//! * **graph alignment** — each query flow (edge) aligns to a provenance
//!   path; its influence score decays with the number of intermediate
//!   processes on the path (Poirot's ancestor-influence idea:
//!   `1 / 2^(hops-1)`); an alignment's score is the average of its flows'
//!   best influences, accepted above a threshold.
//!
//! The **Poirot baseline** stops after the first acceptable alignment; the
//! **ThreatRaptor-Fuzzy** mode searches exhaustively for all of them. Both
//! run under a time budget — exceeding it reproduces the paper's `>3600 s`
//! rows on dense, high-alignment graphs.

use std::time::{Duration as StdDuration, Instant};

use raptor_common::hash::FxHashMap;
use raptor_common::strdist::similarity;
use raptor_tbql::analyze::AnalyzedQuery;
use raptor_tbql::{AttrExpr, EntityType, OpExpr, PatternOp, Value};

use crate::provenance::{ProvGraph, ProvKind};

/// A query-graph node: one TBQL entity variable.
#[derive(Clone, Debug)]
pub struct QueryNode {
    pub var: String,
    pub kind: ProvKind,
    /// The IOC string constraint, wildcards stripped (None = unconstrained).
    pub needle: Option<String>,
}

/// A query-graph flow: one TBQL pattern.
#[derive(Clone, Debug)]
pub struct QueryFlow {
    pub src: usize,
    pub dst: usize,
    /// Required operation of the flow's final hop, when the pattern pins one.
    pub op: Option<String>,
}

/// The query graph extracted from an analyzed TBQL query.
#[derive(Clone, Debug, Default)]
pub struct QueryGraph {
    pub nodes: Vec<QueryNode>,
    pub flows: Vec<QueryFlow>,
}

fn kind_of(ty: EntityType) -> ProvKind {
    match ty {
        EntityType::Proc => ProvKind::Process,
        EntityType::File => ProvKind::File,
        EntityType::Ip => ProvKind::NetConn,
    }
}

/// Pulls the first default-attribute string literal out of a filter.
fn needle_of(filter: &AttrExpr) -> Option<String> {
    match filter {
        AttrExpr::Cmp { value: Value::Str(s), .. } => {
            let stripped = s.trim_matches('%');
            if stripped.is_empty() {
                None
            } else {
                Some(stripped.to_string())
            }
        }
        AttrExpr::And(a, b) | AttrExpr::Or(a, b) => needle_of(a).or_else(|| needle_of(b)),
        _ => None,
    }
}

fn single_op(e: &OpExpr) -> Option<String> {
    match e {
        OpExpr::Op(s) => Some(s.clone()),
        _ => None,
    }
}

impl QueryGraph {
    /// Builds the query graph from an analyzed TBQL query.
    pub fn from_analyzed(aq: &AnalyzedQuery) -> QueryGraph {
        let mut nodes = Vec::new();
        let mut index: FxHashMap<&str, usize> = FxHashMap::default();
        for id in &aq.entity_order {
            let e = &aq.entities[id];
            index.insert(id.as_str(), nodes.len());
            nodes.push(QueryNode {
                var: id.clone(),
                kind: kind_of(e.ty),
                needle: e.filter.as_ref().and_then(needle_of),
            });
        }
        let flows = aq
            .patterns
            .iter()
            .map(|p| QueryFlow {
                src: index[p.subject.as_str()],
                dst: index[p.object.as_str()],
                op: match &p.op {
                    PatternOp::Event(op) => single_op(op),
                    PatternOp::Path { op, .. } => op.as_ref().and_then(single_op),
                },
            })
            .collect();
        QueryGraph { nodes, flows }
    }
}

/// Search configuration.
#[derive(Clone, Debug)]
pub struct FuzzyConfig {
    /// Minimum Levenshtein similarity for node alignment.
    pub node_sim_threshold: f64,
    /// Minimum alignment score to accept.
    pub accept_threshold: f64,
    /// Maximum provenance path length per flow.
    pub max_path_len: u32,
    /// Wall-clock budget; exceeding it aborts with `timed_out`.
    pub budget: StdDuration,
    /// Exhaustive (ThreatRaptor-Fuzzy) vs first-acceptable (Poirot).
    pub exhaustive: bool,
}

impl Default for FuzzyConfig {
    fn default() -> Self {
        FuzzyConfig {
            node_sim_threshold: 0.7,
            accept_threshold: 0.6,
            max_path_len: 3,
            budget: StdDuration::from_secs(3600),
            exhaustive: true,
        }
    }
}

/// One accepted alignment.
#[derive(Clone, Debug)]
pub struct Alignment {
    /// query node index → provenance node id.
    pub node_map: Vec<(usize, u32)>,
    pub score: f64,
}

/// Search outcome.
#[derive(Clone, Debug, Default)]
pub struct FuzzyOutcome {
    pub alignments: Vec<Alignment>,
    pub timed_out: bool,
    /// Candidate seed combinations examined.
    pub candidates_considered: usize,
    /// Searching-phase seconds.
    pub searching: f64,
}

/// BFS over the provenance graph: distances (in hops) from `src` up to
/// `max_len`, optionally requiring the final hop's op to match.
fn reachable(prov: &ProvGraph, src: u32, max_len: u32) -> FxHashMap<u32, u32> {
    let mut dist: FxHashMap<u32, u32> = FxHashMap::default();
    let mut frontier = vec![src];
    dist.insert(src, 0);
    for d in 1..=max_len {
        let mut next = Vec::new();
        for &n in &frontier {
            for &eidx in &prov.out[n as usize] {
                let e = prov.edges[eidx as usize];
                if let std::collections::hash_map::Entry::Vacant(slot) = dist.entry(e.dst) {
                    slot.insert(d);
                    next.push(e.dst);
                }
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    dist.remove(&src);
    dist
}

/// Influence score of a flow aligned to a path of `len` hops (Poirot's decay
/// with the number of intermediate compromised processes).
fn influence(len: u32) -> f64 {
    1.0 / f64::powi(2.0, len as i32 - 1)
}

/// Runs the fuzzy search.
pub fn search(prov: &ProvGraph, qg: &QueryGraph, cfg: &FuzzyConfig) -> FuzzyOutcome {
    let t0 = Instant::now();
    let mut out = FuzzyOutcome::default();

    // --- node alignment: candidates per constrained query node ---
    let mut candidates: Vec<Vec<u32>> = Vec::with_capacity(qg.nodes.len());
    for qn in &qg.nodes {
        let mut cands = Vec::new();
        if let Some(needle) = &qn.needle {
            for (i, pn) in prov.nodes.iter().enumerate() {
                if pn.kind != qn.kind {
                    continue;
                }
                let sim_ok = pn.attr.contains(needle.as_str())
                    || similarity(needle, &pn.attr) >= cfg.node_sim_threshold
                    || basename_similarity(needle, &pn.attr) >= cfg.node_sim_threshold;
                if sim_ok {
                    cands.push(i as u32);
                }
            }
        }
        candidates.push(cands);
    }

    // Constrained nodes, fewest candidates first (Poirot's seed selection).
    let unmatchable: Vec<bool> = (0..qg.nodes.len())
        .map(|i| qg.nodes[i].needle.is_some() && candidates[i].is_empty())
        .collect();
    let mut constrained: Vec<usize> = (0..qg.nodes.len())
        .filter(|&i| qg.nodes[i].needle.is_some() && !candidates[i].is_empty())
        .collect();
    constrained.sort_by_key(|&i| candidates[i].len());
    // Constrained nodes with zero candidates stay unassigned: their flows
    // contribute zero influence but do not abort the search — Poirot aligns
    // best-effort, and an unmatched excess pattern should not veto the rest.
    if constrained.is_empty() {
        out.searching = t0.elapsed().as_secs_f64();
        return out;
    }

    // --- graph alignment: enumerate assignments recursively ---
    struct SearchState<'a> {
        prov: &'a ProvGraph,
        qg: &'a QueryGraph,
        cfg: &'a FuzzyConfig,
        constrained: &'a [usize],
        candidates: &'a [Vec<u32>],
        unmatchable: &'a [bool],
        assignment: Vec<Option<u32>>,
        bfs_cache: FxHashMap<u32, FxHashMap<u32, u32>>,
        out: FuzzyOutcome,
        t0: Instant,
    }

    /// Returns true when the search should stop (budget hit or first
    /// alignment accepted in Poirot mode).
    fn enumerate(st: &mut SearchState<'_>, depth: usize) -> bool {
        if st.t0.elapsed() > st.cfg.budget {
            st.out.timed_out = true;
            return true;
        }
        if depth == st.constrained.len() {
            st.out.candidates_considered += 1;
            if let Some(al) = score_assignment(
                st.prov,
                st.qg,
                &st.assignment,
                st.unmatchable,
                st.cfg,
                &mut st.bfs_cache,
            ) {
                st.out.alignments.push(al);
                if !st.cfg.exhaustive {
                    return true;
                }
            }
            return false;
        }
        let qi = st.constrained[depth];
        for k in 0..st.candidates[qi].len() {
            let cand = st.candidates[qi][k];
            // Injectivity: distinct query nodes map to distinct entities.
            if st.assignment.contains(&Some(cand)) {
                continue;
            }
            st.assignment[qi] = Some(cand);
            if enumerate(st, depth + 1) {
                return true;
            }
            st.assignment[qi] = None;
        }
        false
    }

    let mut st = SearchState {
        prov,
        qg,
        cfg,
        constrained: &constrained,
        candidates: &candidates,
        unmatchable: &unmatchable,
        assignment: vec![None; qg.nodes.len()],
        bfs_cache: FxHashMap::default(),
        out,
        t0,
    };
    enumerate(&mut st, 0);
    let mut out = st.out;

    // Best alignments first.
    out.alignments
        .sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal));
    out.searching = t0.elapsed().as_secs_f64();
    out
}

/// Scores one assignment; returns the alignment if it clears the threshold.
fn score_assignment(
    prov: &ProvGraph,
    qg: &QueryGraph,
    assignment: &[Option<u32>],
    unmatchable: &[bool],
    cfg: &FuzzyConfig,
    bfs_cache: &mut FxHashMap<u32, FxHashMap<u32, u32>>,
) -> Option<Alignment> {
    if qg.flows.is_empty() {
        return None;
    }
    let mut total = 0.0;
    // Unconstrained nodes bind greedily through flows.
    let mut local: Vec<Option<u32>> = assignment.to_vec();
    for flow in &qg.flows {
        // A flow touching a node whose IOC string matched nothing scores
        // zero (it must not bind greedily to an arbitrary entity).
        if unmatchable[flow.src] || unmatchable[flow.dst] {
            continue;
        }
        let src = local[flow.src];
        let dst = local[flow.dst];
        let inf = match (src, dst) {
            (Some(s), Some(d)) => {
                let dist =
                    bfs_cache.entry(s).or_insert_with(|| reachable(prov, s, cfg.max_path_len));
                dist.get(&d).map(|&l| influence(l)).unwrap_or(0.0)
            }
            (Some(s), None) => {
                // Bind dst to the nearest compatible reachable node.
                let want = qg.nodes[flow.dst].kind;
                let dist =
                    bfs_cache.entry(s).or_insert_with(|| reachable(prov, s, cfg.max_path_len));
                let best = dist
                    .iter()
                    .filter(|(&n, _)| prov.nodes[n as usize].kind == want)
                    .min_by_key(|(_, &l)| l);
                match best {
                    Some((&n, &l)) => {
                        local[flow.dst] = Some(n);
                        influence(l)
                    }
                    None => 0.0,
                }
            }
            (None, Some(d)) => {
                // Walk backwards one-ish hop: use in-edges.
                let want = qg.nodes[flow.src].kind;
                let mut best: Option<u32> = None;
                for &eidx in &prov.inn[d as usize] {
                    let e = prov.edges[eidx as usize];
                    if prov.nodes[e.src as usize].kind == want {
                        best = Some(e.src);
                        break;
                    }
                }
                match best {
                    Some(n) => {
                        local[flow.src] = Some(n);
                        influence(1)
                    }
                    None => 0.0,
                }
            }
            (None, None) => 0.0,
        };
        total += inf;
    }
    let score = total / qg.flows.len() as f64;
    if score < cfg.accept_threshold {
        return None;
    }
    let node_map = local.iter().enumerate().filter_map(|(i, a)| a.map(|n| (i, n))).collect();
    Some(Alignment { node_map, score })
}

/// Similarity of path basenames (a typo in a file name should not be
/// drowned out by a long identical directory prefix).
fn basename_similarity(a: &str, b: &str) -> f64 {
    let base = |s: &str| s.rsplit('/').next().unwrap_or(s).to_string();
    similarity(&base(a), &base(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::load;
    use crate::provenance::build_from_stores;
    use raptor_audit::sim::Simulator;
    use raptor_audit::LogParser;
    use raptor_common::time::Timestamp;
    use raptor_tbql::{analyze, parse_tbql};

    fn prov_with_attack() -> ProvGraph {
        let mut sim = Simulator::new(7, Timestamp::from_secs(0));
        raptor_audit::sim::generate_background(
            &mut sim,
            &raptor_audit::sim::BackgroundProfile { users: 2, sessions: 15, ..Default::default() },
        );
        let shell = sim.boot_process("/bin/bash", "root");
        let tar = sim.spawn(shell, "/bin/tar", "tar");
        sim.read_file(tar, "/etc/passwd", 4096, 2);
        sim.write_file(tar, "/tmp/upload.tar", 4096, 2);
        let curl = sim.spawn(shell, "/usr/bin/curl", "curl");
        sim.read_file(curl, "/tmp/upload.tar", 4096, 1);
        let fd = sim.connect(curl, "192.168.29.128", 443);
        sim.send(curl, fd, 4096, 1);
        let log = LogParser::parse(&sim.finish());
        let stores = load(&log).unwrap();
        build_from_stores(&stores).unwrap().0
    }

    fn qg(text: &str) -> QueryGraph {
        QueryGraph::from_analyzed(&analyze(&parse_tbql(text).unwrap()).unwrap())
    }

    #[test]
    fn exact_query_aligns() {
        let prov = prov_with_attack();
        let q = qg(r#"proc p["%/bin/tar%"] read file f["%/etc/passwd%"] as e1
                      proc p write file g["%/tmp/upload.tar%"] as e2
                      return p, f, g"#);
        let out = search(&prov, &q, &FuzzyConfig::default());
        assert!(!out.timed_out);
        assert!(!out.alignments.is_empty());
        assert!(out.alignments[0].score > 0.9);
    }

    #[test]
    fn typo_in_ioc_still_aligns() {
        let prov = prov_with_attack();
        // "cur1" for "curl", "passwd" misspelled: Levenshtein absorbs both.
        let q = qg(r#"proc p["%/usr/bin/cur1%"] connect ip i["192.168.29.128"] as e1
                      return p, i"#);
        let out = search(&prov, &q, &FuzzyConfig::default());
        assert!(!out.alignments.is_empty(), "typo should still align");
    }

    #[test]
    fn wrong_query_does_not_align() {
        let prov = prov_with_attack();
        let q = qg(r#"proc p["%/sbin/nonexistent-tool%"] read file f["%/etc/no-such-file%"] as e1
                      return p, f"#);
        let out = search(&prov, &q, &FuzzyConfig::default());
        assert!(out.alignments.is_empty());
    }

    #[test]
    fn poirot_stops_at_first_fuzzy_is_exhaustive() {
        let prov = prov_with_attack();
        // An under-constrained query with multiple possible alignments.
        let q = qg(r#"proc p["%/bin/%"] read file f as e1 return p, f"#);
        let mut cfg = FuzzyConfig { accept_threshold: 0.5, ..Default::default() };
        cfg.exhaustive = false;
        let poirot = search(&prov, &q, &cfg);
        cfg.exhaustive = true;
        let fuzzy = search(&prov, &q, &cfg);
        assert!(poirot.alignments.len() <= 1);
        assert!(fuzzy.alignments.len() >= poirot.alignments.len());
    }

    #[test]
    fn budget_exhaustion_times_out() {
        let prov = prov_with_attack();
        let q = qg(r#"proc p["%/bin/%"] read file f["%o%"] as e1 return p, f"#);
        let cfg = FuzzyConfig { budget: StdDuration::from_nanos(1), ..Default::default() };
        let out = search(&prov, &q, &cfg);
        assert!(out.timed_out);
    }

    #[test]
    fn multi_hop_flow_scores_lower() {
        let _prov = prov_with_attack();
        // tar -> upload.tar is 1 hop (score 1); a flow requiring the curl
        // intermediary would be 2 hops via (tar)->(file)<-... not reachable
        // forward; check influence decay directly.
        assert_eq!(influence(1), 1.0);
        assert_eq!(influence(2), 0.5);
        assert_eq!(influence(3), 0.25);
    }

    #[test]
    fn query_graph_extraction() {
        let q = qg(r#"proc p1["%/bin/tar%"] read file f1["%/etc/passwd%"] as e1
                      proc p1 ~>(1~3)[write] file f2 as e2
                      return p1, f1, f2"#);
        assert_eq!(q.nodes.len(), 3);
        assert_eq!(q.flows.len(), 2);
        assert_eq!(q.nodes[0].needle.as_deref(), Some("/bin/tar"));
        assert_eq!(q.flows[0].op.as_deref(), Some("read"));
        assert_eq!(q.flows[1].op.as_deref(), Some("write"));
        assert!(q.nodes[2].needle.is_none());
    }
}
