//! The write-ahead log: binary, length-prefixed, checksummed records with
//! epoch/watermark framing.
//!
//! Every mutation that reaches the storage backends goes through the single
//! write seam in [`crate::load`]; when a [`WalSink`] is attached to the
//! [`crate::load::LoadedStores`], each appended entity/event is logged
//! *before* it is applied. Epoch boundaries are framed by an
//! [`WalRecord::EpochCommit`] record (followed by an fsync) — the WAL's
//! durable points. Standing-query registrations are logged as
//! [`WalRecord::Register`] records, which are **self-committing**: a
//! registration never sits inside an epoch's record run, so a synced
//! `Register` extends the durable prefix on its own.
//!
//! ## On-disk record frame
//!
//! ```text
//! [len: u32 le] [crc32(payload): u32 le] [payload: len bytes]
//! payload = [tag: u8] tag-specific fields (little-endian, strings u32-len-prefixed)
//! ```
//!
//! [`scan`] reads a WAL byte buffer back tolerantly: a torn, truncated or
//! checksum-corrupt suffix simply terminates the scan (it is the tail the
//! crash tore — recovery discards it), and valid-but-uncommitted records
//! after the last durable point are discarded too, because the epoch they
//! belong to never committed and will be re-delivered by the source.

use std::sync::Arc;
use std::time::Instant;

use raptor_audit::syscall::Protocol;
use raptor_audit::{
    Entity, EntityAttrs, EventKind, FileAttrs, NetConnAttrs, Operation, ParsedLog, ProcessAttrs,
    SystemEvent,
};
use raptor_common::error::{Error, Result};
use raptor_common::ids::{EntityId, EventId};
use raptor_common::io::{self, Cur, Fs};
use raptor_common::obs;
use raptor_common::time::Timestamp;

/// File name of the write-ahead log inside a durability [`Fs`].
pub const WAL_FILE: &str = "wal";

const TAG_ENTITY: u8 = 1;
const TAG_EVENT: u8 = 2;
const TAG_COMMIT: u8 = 3;
const TAG_REGISTER: u8 = 4;

/// One logical WAL record.
#[derive(Clone, Debug, PartialEq)]
pub enum WalRecord {
    /// An appended entity (logged before it reaches the backends).
    Entity(Entity),
    /// An appended event.
    Event(SystemEvent),
    /// Durable point: the epoch's records are complete and fsynced.
    EpochCommit { epoch: u64, watermark: i64 },
    /// A standing-query registration (self-committing durable point).
    Register { name: String, text: String },
}

// ---------------------------------------------------------------------------
// Payload codecs.
// ---------------------------------------------------------------------------

fn kind_tag(kind: EventKind) -> u8 {
    match kind {
        EventKind::File => 0,
        EventKind::Process => 1,
        EventKind::Network => 2,
    }
}

fn kind_from_tag(tag: u8) -> Result<EventKind> {
    match tag {
        0 => Ok(EventKind::File),
        1 => Ok(EventKind::Process),
        2 => Ok(EventKind::Network),
        other => Err(Error::storage(format!("invalid event kind tag {other}"))),
    }
}

fn put_entity(buf: &mut Vec<u8>, e: &Entity) {
    io::put_u32(buf, e.id.0);
    io::put_u16(buf, e.host);
    match &e.attrs {
        EntityAttrs::File(f) => {
            io::put_u8(buf, 0);
            io::put_str(buf, &f.name);
            io::put_str(buf, &f.path);
            io::put_str(buf, &f.user);
            io::put_str(buf, &f.group);
        }
        EntityAttrs::Process(p) => {
            io::put_u8(buf, 1);
            io::put_u32(buf, p.pid);
            io::put_str(buf, &p.exename);
            io::put_str(buf, &p.user);
            io::put_str(buf, &p.group);
            io::put_str(buf, &p.cmd);
        }
        EntityAttrs::NetConn(n) => {
            io::put_u8(buf, 2);
            io::put_str(buf, &n.src_ip);
            io::put_u16(buf, n.src_port);
            io::put_str(buf, &n.dst_ip);
            io::put_u16(buf, n.dst_port);
            io::put_u8(
                buf,
                match n.protocol {
                    Protocol::Tcp => 0,
                    Protocol::Udp => 1,
                },
            );
        }
    }
}

fn get_entity(cur: &mut Cur<'_>) -> Result<Entity> {
    let id = EntityId(cur.get_u32()?);
    let host = cur.get_u16()?;
    let attrs = match cur.get_u8()? {
        0 => EntityAttrs::File(FileAttrs {
            name: cur.get_str()?,
            path: cur.get_str()?,
            user: cur.get_str()?,
            group: cur.get_str()?,
        }),
        1 => EntityAttrs::Process(ProcessAttrs {
            pid: cur.get_u32()?,
            exename: cur.get_str()?,
            user: cur.get_str()?,
            group: cur.get_str()?,
            cmd: cur.get_str()?,
        }),
        2 => EntityAttrs::NetConn(NetConnAttrs {
            src_ip: cur.get_str()?,
            src_port: cur.get_u16()?,
            dst_ip: cur.get_str()?,
            dst_port: cur.get_u16()?,
            protocol: match cur.get_u8()? {
                0 => Protocol::Tcp,
                1 => Protocol::Udp,
                other => {
                    return Err(Error::storage(format!("invalid protocol tag {other}")));
                }
            },
        }),
        other => return Err(Error::storage(format!("invalid entity kind tag {other}"))),
    };
    Ok(Entity { id, host, attrs })
}

fn put_event(buf: &mut Vec<u8>, ev: &SystemEvent) {
    io::put_u32(buf, ev.id.0);
    io::put_u32(buf, ev.subject.0);
    io::put_u32(buf, ev.object.0);
    let op = Operation::ALL.iter().position(|o| *o == ev.op).expect("op in ALL") as u8;
    io::put_u8(buf, op);
    io::put_u8(buf, kind_tag(ev.kind));
    io::put_i64(buf, ev.start.0);
    io::put_i64(buf, ev.end.0);
    io::put_u64(buf, ev.amount);
    io::put_i32(buf, ev.fail_code);
    io::put_u16(buf, ev.host);
}

fn get_event(cur: &mut Cur<'_>) -> Result<SystemEvent> {
    let id = EventId(cur.get_u32()?);
    let subject = EntityId(cur.get_u32()?);
    let object = EntityId(cur.get_u32()?);
    let op_tag = cur.get_u8()? as usize;
    let op = *Operation::ALL
        .get(op_tag)
        .ok_or_else(|| Error::storage(format!("invalid operation tag {op_tag}")))?;
    let kind = kind_from_tag(cur.get_u8()?)?;
    let start = Timestamp(cur.get_i64()?);
    let end = Timestamp(cur.get_i64()?);
    let amount = cur.get_u64()?;
    let fail_code = cur.get_i32()?;
    let host = cur.get_u16()?;
    Ok(SystemEvent { id, subject, object, op, kind, start, end, amount, fail_code, host })
}

fn encode_payload(rec: &WalRecord) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    match rec {
        WalRecord::Entity(e) => {
            io::put_u8(&mut buf, TAG_ENTITY);
            put_entity(&mut buf, e);
        }
        WalRecord::Event(ev) => {
            io::put_u8(&mut buf, TAG_EVENT);
            put_event(&mut buf, ev);
        }
        WalRecord::EpochCommit { epoch, watermark } => {
            io::put_u8(&mut buf, TAG_COMMIT);
            io::put_u64(&mut buf, *epoch);
            io::put_i64(&mut buf, *watermark);
        }
        WalRecord::Register { name, text } => {
            io::put_u8(&mut buf, TAG_REGISTER);
            io::put_str(&mut buf, name);
            io::put_str(&mut buf, text);
        }
    }
    buf
}

fn decode_payload(payload: &[u8]) -> Result<WalRecord> {
    let mut cur = Cur::new(payload);
    let rec = match cur.get_u8()? {
        TAG_ENTITY => WalRecord::Entity(get_entity(&mut cur)?),
        TAG_EVENT => WalRecord::Event(get_event(&mut cur)?),
        TAG_COMMIT => WalRecord::EpochCommit { epoch: cur.get_u64()?, watermark: cur.get_i64()? },
        TAG_REGISTER => WalRecord::Register { name: cur.get_str()?, text: cur.get_str()? },
        other => return Err(Error::storage(format!("invalid WAL record tag {other}"))),
    };
    if !cur.is_done() {
        return Err(Error::storage(format!(
            "trailing {} bytes inside WAL record payload",
            cur.remaining()
        )));
    }
    Ok(rec)
}

/// Frames a record for appending: `[len][crc][payload]`.
pub fn frame(rec: &WalRecord) -> Vec<u8> {
    let payload = encode_payload(rec);
    let mut out = Vec::with_capacity(8 + payload.len());
    io::put_u32(&mut out, payload.len() as u32);
    io::put_u32(&mut out, io::crc32(&payload));
    out.extend_from_slice(&payload);
    out
}

// ---------------------------------------------------------------------------
// The sink: attached below the load seam.
// ---------------------------------------------------------------------------

/// Appends framed records to the `wal` file of an [`Fs`], with fsyncs at
/// durable points. Attached to [`crate::load::LoadedStores::wal`] so the
/// load seam logs every entity/event before applying it.
#[derive(Debug, Clone)]
pub struct WalSink {
    fs: Arc<dyn Fs>,
}

impl WalSink {
    pub fn new(fs: Arc<dyn Fs>) -> Self {
        WalSink { fs }
    }

    fn append(&self, rec: &WalRecord) -> Result<()> {
        let bytes = frame(rec);
        self.fs.append(WAL_FILE, &bytes)?;
        let m = obs::metrics();
        m.counter_add("raptor_wal_records_total", 1);
        m.counter_add("raptor_wal_bytes_total", bytes.len() as u64);
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        let t = Instant::now();
        self.fs.sync(WAL_FILE)?;
        obs::metrics().observe_ns("raptor_wal_fsync_ns", t.elapsed().as_nanos() as u64);
        Ok(())
    }

    /// Logs an entity append (no fsync — the epoch commit syncs).
    pub fn log_entity(&self, e: &Entity) -> Result<()> {
        self.append(&WalRecord::Entity(e.clone()))
    }

    /// Logs an event append (no fsync — the epoch commit syncs).
    pub fn log_event(&self, ev: &SystemEvent) -> Result<()> {
        self.append(&WalRecord::Event(ev.clone()))
    }

    /// Commits an epoch: appends the `EpochCommit` frame and fsyncs. Only
    /// after this returns is the epoch durable.
    pub fn commit_epoch(&self, epoch: u64, watermark: i64) -> Result<()> {
        self.append(&WalRecord::EpochCommit { epoch, watermark })?;
        self.sync()
    }

    /// Logs a standing-query registration and fsyncs (self-committing).
    pub fn log_register(&self, name: &str, text: &str) -> Result<()> {
        self.append(&WalRecord::Register { name: name.to_string(), text: text.to_string() })?;
        self.sync()
    }
}

// ---------------------------------------------------------------------------
// Tolerant scan.
// ---------------------------------------------------------------------------

/// Result of scanning a WAL buffer up to its durable point.
#[derive(Debug)]
pub struct WalScan {
    /// All records of the durable prefix, in append order. The last record
    /// is always an `EpochCommit` or `Register` (or the vec is empty).
    pub records: Vec<WalRecord>,
    /// Byte length of the durable prefix.
    pub durable_len: usize,
    /// Bytes after the durable prefix: a torn/corrupt tail and/or records
    /// of an epoch whose commit never made it to disk.
    pub discarded: usize,
}

/// Scans WAL bytes tolerantly (see module docs). Never errors: anything
/// unreadable or uncommitted is counted into [`WalScan::discarded`].
pub fn scan(bytes: &[u8]) -> WalScan {
    let mut records = Vec::new();
    let mut offset = 0usize;
    let mut durable = (0usize, 0usize); // (record count, byte offset)
    while bytes.len() - offset >= 8 {
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("sized")) as usize;
        let crc = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().expect("sized"));
        if len > io::MAX_BLOB || bytes.len() - offset - 8 < len {
            break; // torn or corrupt length prefix
        }
        let payload = &bytes[offset + 8..offset + 8 + len];
        if io::crc32(payload) != crc {
            break; // bit-rot or torn rewrite
        }
        let Ok(rec) = decode_payload(payload) else {
            break; // checksum ok but undecodable: treat as corrupt tail
        };
        offset += 8 + len;
        let is_durable_point =
            matches!(rec, WalRecord::EpochCommit { .. } | WalRecord::Register { .. });
        records.push(rec);
        if is_durable_point {
            durable = (records.len(), offset);
        }
    }
    records.truncate(durable.0);
    WalScan { records, durable_len: durable.1, discarded: bytes.len() - durable.1 }
}

/// Convenience for tests and benches: a [`ParsedLog`]'s records as one
/// committed epoch's worth of WAL frames.
pub fn frames_for_log(log: &ParsedLog, epoch: u64) -> Vec<u8> {
    let mut out = Vec::new();
    for e in &log.entities {
        out.extend_from_slice(&frame(&WalRecord::Entity(e.clone())));
    }
    for ev in &log.events {
        out.extend_from_slice(&frame(&WalRecord::Event(ev.clone())));
    }
    let watermark = log.events.iter().map(|e| e.end.0).max().unwrap_or(0);
    out.extend_from_slice(&frame(&WalRecord::EpochCommit { epoch, watermark }));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entity() -> Entity {
        Entity {
            id: EntityId(7),
            host: 3,
            attrs: EntityAttrs::Process(ProcessAttrs {
                pid: 4242,
                exename: "/usr/bin/curl".into(),
                user: "root".into(),
                group: "wheel".into(),
                cmd: "curl -s http://x".into(),
            }),
        }
    }

    fn sample_event() -> SystemEvent {
        SystemEvent {
            id: EventId(11),
            subject: EntityId(7),
            object: EntityId(2),
            op: Operation::Connect,
            kind: EventKind::Network,
            start: Timestamp(1_000),
            end: Timestamp(2_000),
            amount: 512,
            fail_code: 0,
            host: 3,
        }
    }

    #[test]
    fn record_roundtrip() {
        let recs = [
            WalRecord::Entity(sample_entity()),
            WalRecord::Entity(Entity {
                id: EntityId(8),
                host: 1,
                attrs: EntityAttrs::File(FileAttrs {
                    name: "/etc/passwd".into(),
                    path: "/etc".into(),
                    user: "root".into(),
                    group: "root".into(),
                }),
            }),
            WalRecord::Entity(Entity {
                id: EntityId(9),
                host: 1,
                attrs: EntityAttrs::NetConn(NetConnAttrs {
                    src_ip: "10.0.0.1".into(),
                    src_port: 40000,
                    dst_ip: "192.168.29.128".into(),
                    dst_port: 443,
                    protocol: Protocol::Udp,
                }),
            }),
            WalRecord::Event(sample_event()),
            WalRecord::EpochCommit { epoch: 5, watermark: 123_456 },
            WalRecord::Register { name: "exfil".into(), text: "proc p read file f".into() },
        ];
        for rec in &recs {
            let framed = frame(rec);
            let payload = &framed[8..];
            assert_eq!(&decode_payload(payload).unwrap(), rec);
        }
    }

    #[test]
    fn scan_stops_at_torn_tail() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&frame(&WalRecord::Entity(sample_entity())));
        bytes.extend_from_slice(&frame(&WalRecord::EpochCommit { epoch: 0, watermark: 9 }));
        let durable = bytes.len();
        // A torn half-record after the commit.
        let torn = frame(&WalRecord::Event(sample_event()));
        bytes.extend_from_slice(&torn[..torn.len() / 2]);
        let scan = scan(&bytes);
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.durable_len, durable);
        assert_eq!(scan.discarded, torn.len() / 2);
    }

    #[test]
    fn scan_discards_uncommitted_epoch() {
        let mut bytes = frame(&WalRecord::EpochCommit { epoch: 0, watermark: 1 });
        let durable = bytes.len();
        // A fully-written but never-committed record run.
        bytes.extend_from_slice(&frame(&WalRecord::Entity(sample_entity())));
        bytes.extend_from_slice(&frame(&WalRecord::Event(sample_event())));
        let scan = scan(&bytes);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.durable_len, durable);
        assert!(scan.discarded > 0);
    }

    #[test]
    fn register_is_a_durable_point() {
        let mut bytes = frame(&WalRecord::EpochCommit { epoch: 0, watermark: 1 });
        bytes.extend_from_slice(&frame(&WalRecord::Register {
            name: "q".into(),
            text: "proc p read file f".into(),
        }));
        let scan = scan(&bytes);
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.durable_len, bytes.len());
        assert_eq!(scan.discarded, 0);
    }

    #[test]
    fn scan_rejects_bit_flips() {
        let clean = frame(&WalRecord::EpochCommit { epoch: 3, watermark: 77 });
        for i in 0..clean.len() {
            for bit in [0x01u8, 0x80u8] {
                let mut corrupt = clean.clone();
                corrupt[i] ^= bit;
                let scan = scan(&corrupt);
                // Either the frame is rejected outright, or (if the flip hit
                // the length prefix making it implausibly large) it reads as
                // torn — never a panic, never a silently-wrong record.
                if let Some(rec) = scan.records.first() {
                    // A flip that survives crc is impossible; decoded record
                    // can only appear if the flip was... nowhere. Unreached.
                    panic!("bit flip at byte {i} survived: {rec:?}");
                }
            }
        }
    }

    #[test]
    fn empty_and_zero_length_inputs() {
        let s = scan(&[]);
        assert!(s.records.is_empty());
        assert_eq!(s.durable_len, 0);
        let s = scan(&[0u8; 7]); // shorter than one header
        assert!(s.records.is_empty());
        assert_eq!(s.discarded, 7);
    }
}
