//! The in-memory provenance graph used by the fuzzy search mode.
//!
//! The paper's fuzzy execution has three phases (Table IX): *loading* all
//! system entities and events from the database into memory, *preprocessing*
//! them into a provenance graph, and *searching* for alignments. This module
//! implements the first two; [`crate::fuzzy`] implements the third.

use std::time::Instant;

use raptor_common::error::Result;
use raptor_relstore::Value;

use crate::load::LoadedStores;

/// Entity kind of a provenance node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProvKind {
    Process,
    File,
    NetConn,
}

/// A provenance node: one system entity with its identifying attribute.
#[derive(Clone, Debug)]
pub struct ProvNode {
    pub kind: ProvKind,
    /// The default identifying attribute (exename / name / dstip).
    pub attr: String,
}

/// A provenance edge: one system event.
#[derive(Clone, Copy, Debug)]
pub struct ProvEdge {
    pub src: u32,
    pub dst: u32,
    /// Operation name index into [`ProvGraph::ops`].
    pub op: u16,
    pub start: i64,
}

/// Phase timings (seconds).
#[derive(Clone, Copy, Debug, Default)]
pub struct ProvTimings {
    pub loading: f64,
    pub preprocessing: f64,
}

/// The provenance graph.
#[derive(Debug, Default)]
pub struct ProvGraph {
    pub nodes: Vec<ProvNode>,
    pub edges: Vec<ProvEdge>,
    pub out: Vec<Vec<u32>>,
    pub inn: Vec<Vec<u32>>,
    /// Distinct operation names.
    pub ops: Vec<String>,
}

impl ProvGraph {
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Average out-degree (the density metric the paper uses to explain the
    /// tc_theia timeouts).
    pub fn avg_degree(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        self.edges.len() as f64 / self.nodes.len() as f64
    }

    fn op_index(&mut self, name: &str) -> u16 {
        if let Some(i) = self.ops.iter().position(|o| o == name) {
            return i as u16;
        }
        self.ops.push(name.to_string());
        (self.ops.len() - 1) as u16
    }
}

/// Loads entities and events out of the relational store (phase 1) and
/// builds the provenance graph (phase 2).
pub fn build_from_stores(stores: &LoadedStores) -> Result<(ProvGraph, ProvTimings)> {
    let mut g = ProvGraph::default();
    let dict = stores.rel.dict();

    // --- loading: pull all rows into memory ---
    let t0 = Instant::now();
    struct RawEvent {
        subj: i64,
        obj: i64,
        op: String,
        start: i64,
    }
    let mut max_id: i64 = -1;
    let mut raw_nodes: Vec<(i64, ProvKind, String)> = Vec::new();
    for (table, kind, attr_col) in [
        ("processes", ProvKind::Process, "exename"),
        ("files", ProvKind::File, "name"),
        ("netconns", ProvKind::NetConn, "dstip"),
    ] {
        let t = stores
            .rel
            .table(table)
            .ok_or_else(|| raptor_common::Error::storage(format!("missing table {table}")))?;
        let id_col = t.schema.require_column("id")?;
        let a_col = t.schema.require_column(attr_col)?;
        for rid in 0..t.len() as u32 {
            let id = match t.cell(rid, id_col) {
                Value::Int(i) => i,
                _ => continue,
            };
            let attr = match t.cell(rid, a_col) {
                Value::Str(s) => dict.resolve(s).to_string(),
                _ => String::new(),
            };
            max_id = max_id.max(id);
            raw_nodes.push((id, kind, attr));
        }
    }
    let events_table = stores
        .rel
        .table("events")
        .ok_or_else(|| raptor_common::Error::storage("missing table events"))?;
    let (sc, oc, opc, stc) = (
        events_table.schema.require_column("subject")?,
        events_table.schema.require_column("object")?,
        events_table.schema.require_column("optype")?,
        events_table.schema.require_column("starttime")?,
    );
    let mut raw_events: Vec<RawEvent> = Vec::with_capacity(events_table.len());
    let et = events_table;
    for rid in 0..et.len() as u32 {
        let (Value::Int(subj), Value::Int(obj), Value::Str(op), Value::Int(start)) =
            (et.cell(rid, sc), et.cell(rid, oc), et.cell(rid, opc), et.cell(rid, stc))
        else {
            continue;
        };
        raw_events.push(RawEvent { subj, obj, op: dict.resolve(op).to_string(), start });
    }
    let loading = t0.elapsed().as_secs_f64();

    // --- preprocessing: build the graph ---
    let t1 = Instant::now();
    let n = (max_id + 1).max(0) as usize;
    g.nodes = vec![ProvNode { kind: ProvKind::File, attr: String::new() }; n];
    for (id, kind, attr) in raw_nodes {
        g.nodes[id as usize] = ProvNode { kind, attr };
    }
    g.out = vec![Vec::new(); n];
    g.inn = vec![Vec::new(); n];
    for e in raw_events {
        if e.subj < 0 || e.obj < 0 || e.subj as usize >= n || e.obj as usize >= n {
            continue;
        }
        let op = g.op_index(&e.op);
        let idx = g.edges.len() as u32;
        g.edges.push(ProvEdge { src: e.subj as u32, dst: e.obj as u32, op, start: e.start });
        g.out[e.subj as usize].push(idx);
        g.inn[e.obj as usize].push(idx);
    }
    let preprocessing = t1.elapsed().as_secs_f64();

    Ok((g, ProvTimings { loading, preprocessing }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::load;
    use raptor_audit::sim::Simulator;
    use raptor_audit::LogParser;
    use raptor_common::time::Timestamp;

    #[test]
    fn builds_from_stores() {
        let mut sim = Simulator::new(11, Timestamp::from_secs(0));
        let shell = sim.boot_process("/bin/bash", "root");
        let tar = sim.spawn(shell, "/bin/tar", "tar");
        sim.read_file(tar, "/etc/passwd", 100, 1);
        let fd = sim.connect(tar, "1.2.3.4", 80);
        sim.send(tar, fd, 10, 1);
        let log = LogParser::parse(&sim.finish());
        let stores = load(&log).unwrap();
        let (g, t) = build_from_stores(&stores).unwrap();
        assert_eq!(g.node_count(), log.entities.len());
        assert_eq!(g.edge_count(), log.events.len());
        assert!(t.loading >= 0.0 && t.preprocessing >= 0.0);
        // tar has outgoing edges; passwd has incoming.
        let tar_node = g
            .nodes
            .iter()
            .position(|x| x.attr == "/bin/tar" && x.kind == ProvKind::Process)
            .unwrap();
        assert!(!g.out[tar_node].is_empty());
        let passwd = g.nodes.iter().position(|x| x.attr == "/etc/passwd").unwrap();
        assert!(!g.inn[passwd].is_empty());
        assert!(g.avg_degree() > 0.0);
        assert!(g.ops.iter().any(|o| o == "read"));
    }
}
