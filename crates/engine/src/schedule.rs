//! Data-query scheduling (Section III-F).
//!
//! "For each TBQL pattern, ThreatRaptor computes a pruning score by counting
//! the number of constraints declared; a TBQL pattern with more constraints
//! has a higher score. For a variable-length event path pattern, we
//! additionally consider the length of the path ...; a pattern with a
//! smaller maximum path length has a higher score. Then ... if two TBQL
//! patterns have dependencies (e.g., connected by the same system entity),
//! ThreatRaptor will first execute the data query whose associated pattern
//! has a higher pruning score, and then use the execution results to
//! constrain the execution of the other data query."
//!
//! That syntactic score is now the **fallback**. The default scheduler is
//! *cost-based*: each pattern's output cardinality is estimated from the
//! backends' maintained statistics (see [`crate::estimate`]) and patterns
//! run in ascending estimated-rows order — the most selective data query
//! first, so its results prune everything after it. Ties (and the whole
//! order, when stats are absent) fall back to the syntactic score; at equal
//! scores event patterns run before path patterns (an indexed three-way
//! join is cheaper than a graph traversal), then query order keeps runs
//! deterministic. Reordering can never change results — only the size of
//! the propagated `IN` sets — which the order-invariance proptest pins.

use crate::estimate::PatternEstimate;
use raptor_common::hash::FxHashMap;
use raptor_tbql::analyze::{APattern, AnalyzedQuery};
use raptor_tbql::{Arrow, AttrExpr, OpExpr, PatternOp};

/// How the scheduled executor orders its per-pattern data queries.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SchedulerMode {
    /// Ascending estimated output cardinality from `StorageBackend::stats`;
    /// falls back to [`SchedulerMode::Syntactic`] when the stores carry no
    /// statistics (empty stores).
    #[default]
    CostBased,
    /// The paper's syntactic pruning score only.
    Syntactic,
}

/// Counts constraint atoms in an attribute expression.
fn attr_atoms(e: &AttrExpr) -> i64 {
    match e {
        AttrExpr::Bare { .. } | AttrExpr::Cmp { .. } | AttrExpr::InSet { .. } => 1,
        AttrExpr::And(a, b) | AttrExpr::Or(a, b) => attr_atoms(a) + attr_atoms(b),
    }
}

fn op_atoms(e: &OpExpr) -> i64 {
    match e {
        OpExpr::Op(_) => 1,
        OpExpr::Not(i) => op_atoms(i),
        OpExpr::And(a, b) | OpExpr::Or(a, b) => op_atoms(a) + op_atoms(b),
    }
}

/// Hop count assumed for unbounded paths when scoring.
const UNBOUNDED_PATH_LEN: u32 = 16;

/// The pruning score of a pattern within its query.
pub fn pruning_score(aq: &AnalyzedQuery, p: &APattern) -> i64 {
    let mut constraints = 0i64;
    for var in [&p.subject, &p.object] {
        if let Some(f) = &aq.entities[var.as_str()].filter {
            constraints += attr_atoms(f);
        }
    }
    match &p.op {
        PatternOp::Event(op) => constraints += op_atoms(op),
        PatternOp::Path { op, .. } => {
            if let Some(op) = op {
                constraints += op_atoms(op);
            }
        }
    }
    if let Some(f) = &p.event_filter {
        constraints += attr_atoms(f);
    }
    if p.window.is_some() {
        constraints += 1;
    }
    constraints += aq.global_windows.len() as i64;

    // Constraints dominate; path length is the penalty term.
    let length_penalty = match &p.op {
        PatternOp::Event(_) => 0,
        PatternOp::Path { arrow: Arrow::Single, .. } => 1,
        PatternOp::Path { max, .. } => max.unwrap_or(UNBOUNDED_PATH_LEN) as i64,
    };
    constraints * 100 - length_penalty
}

/// Syntactic execution order: pattern indices sorted by descending pruning
/// score. Ties prefer event patterns over path patterns (cheaper to
/// evaluate: an indexed relational join vs a graph traversal), then query
/// order, keeping runs deterministic.
pub fn execution_order(aq: &AnalyzedQuery) -> Vec<usize> {
    let mut order: Vec<usize> = (0..aq.patterns.len()).collect();
    order.sort_by_key(|&i| (-pruning_score(aq, &aq.patterns[i]), aq.patterns[i].is_path(), i));
    order
}

/// Cost-based execution order: ascending estimated rows (the most selective
/// data query first), with the syntactic tie-break rules of
/// [`execution_order`] after it. Estimates must be index-aligned with
/// `aq.patterns`; patterns without an estimate sort last.
pub fn cost_based_order(aq: &AnalyzedQuery, estimates: &[PatternEstimate]) -> Vec<usize> {
    debug_assert_eq!(estimates.len(), aq.patterns.len());
    let mut order: Vec<usize> = (0..aq.patterns.len()).collect();
    order.sort_by(|&a, &b| {
        let ea = estimates[a].estimated_rows.unwrap_or(f64::INFINITY);
        let eb = estimates[b].estimated_rows.unwrap_or(f64::INFINITY);
        ea.total_cmp(&eb)
            .then_with(|| {
                pruning_score(aq, &aq.patterns[b]).cmp(&pruning_score(aq, &aq.patterns[a]))
            })
            .then_with(|| aq.patterns[a].is_path().cmp(&aq.patterns[b].is_path()))
            .then(a.cmp(&b))
    });
    order
}

/// Partitions an execution order into **dependency chains** — the
/// scheduler's propagation DAG collapsed to its connected components.
///
/// Two patterns depend on each other exactly when they share an entity
/// variable (that is the only edge along which intermediate results
/// propagate as `IN` filters), so patterns in *different* chains can
/// execute concurrently without observing each other, while the given
/// order is preserved *within* each chain. Chains are returned in order of
/// their first pattern's position in `order`, and every chain lists its
/// pattern indices as the order's subsequence — both deterministic, so the
/// parallel execution plane issues exactly the same data queries at every
/// thread count.
pub fn dependency_chains(aq: &AnalyzedQuery, order: &[usize]) -> Vec<Vec<usize>> {
    // Union-find over pattern indices, linked through shared variables.
    let mut parent: Vec<usize> = (0..aq.patterns.len()).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let mut var_owner: FxHashMap<&str, usize> = FxHashMap::default();
    for (i, p) in aq.patterns.iter().enumerate() {
        for var in [p.subject.as_str(), p.object.as_str()] {
            match var_owner.get(var) {
                Some(&j) => {
                    let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                    parent[a] = b;
                }
                None => {
                    var_owner.insert(var, i);
                }
            }
        }
    }
    let mut chain_of_root: FxHashMap<usize, usize> = FxHashMap::default();
    let mut chains: Vec<Vec<usize>> = Vec::new();
    for &idx in order {
        let root = find(&mut parent, idx);
        let c = *chain_of_root.entry(root).or_insert_with(|| {
            chains.push(Vec::new());
            chains.len() - 1
        });
        chains[c].push(idx);
    }
    chains
}

#[cfg(test)]
mod tests {
    use super::*;
    use raptor_tbql::{analyze, parse_tbql};

    fn analyzed(text: &str) -> AnalyzedQuery {
        analyze(&parse_tbql(text).unwrap()).unwrap()
    }

    #[test]
    fn more_constraints_scores_higher() {
        let aq = analyzed(
            r#"proc p1["%/bin/tar%"] read file f1["%/etc/passwd%"] as e1
               proc p2 read file f2 as e2
               return f1"#,
        );
        let s1 = pruning_score(&aq, &aq.patterns[0]);
        let s2 = pruning_score(&aq, &aq.patterns[1]);
        assert!(s1 > s2, "{s1} vs {s2}");
        assert_eq!(execution_order(&aq), vec![0, 1]);
    }

    #[test]
    fn shorter_paths_score_higher() {
        let aq = analyzed(
            r#"proc p1["%x%"] ~>(~2)[read] file f1 as e1
               proc p2["%x%"] ~>(~8)[read] file f2 as e2
               return f1"#,
        );
        assert!(pruning_score(&aq, &aq.patterns[0]) > pruning_score(&aq, &aq.patterns[1]));
    }

    #[test]
    fn unbounded_path_scores_lowest() {
        let aq = analyzed(
            r#"proc p1["%x%"] ~>[read] file f1 as e1
               proc p2["%x%"] ~>(~4)[read] file f2 as e2
               return f1"#,
        );
        assert_eq!(execution_order(&aq), vec![1, 0]);
    }

    #[test]
    fn event_beats_path_at_equal_constraints() {
        let aq = analyzed(
            r#"proc p1["%x%"] ~>(~4)[read] file f1 as e1
               proc p2["%x%"] read file f2 as e2
               return f1"#,
        );
        assert_eq!(execution_order(&aq), vec![1, 0]);
    }

    #[test]
    fn tie_breaks_prefer_event_over_path() {
        // Exact score tie: the path has two constraint atoms but a length
        // penalty of 100 (200 − 100 = 100), the event has one atom (100).
        // The event pattern must run first despite its later query position.
        let aq = analyzed(
            r#"proc p["%x%"] ~>(~100)[read] file f as e1
               proc q read file g as e2
               return f"#,
        );
        assert_eq!(pruning_score(&aq, &aq.patterns[0]), pruning_score(&aq, &aq.patterns[1]));
        assert_eq!(execution_order(&aq), vec![1, 0]);
    }

    /// Pins the syntactic order on the shared 8-query equivalence corpus —
    /// the baseline the cost-based scheduler is measured against in the
    /// `bench_smoke` gate. Any change here is a scheduler-semantics change
    /// and must be deliberate.
    #[test]
    fn corpus_syntactic_order_pinned() {
        let expected: &[&[usize]] =
            &[&[0], &[0, 1], &[0, 1, 2], &[0, 1], &[0], &[0, 1], &[0], &[0]];
        assert_eq!(raptor_tbql::parser::EQUIV_CORPUS.len(), expected.len());
        for (q, want) in raptor_tbql::parser::EQUIV_CORPUS.iter().zip(expected) {
            let aq = analyzed(q);
            assert_eq!(execution_order(&aq), *want, "query: {q}");
        }
    }

    #[test]
    fn cost_based_order_sorts_ascending_estimates() {
        let aq = analyzed(
            r#"proc a read file b as e1
               proc c read file d as e2
               proc e read file f as e3
               return b"#,
        );
        let est = |i: usize, rows: Option<f64>| crate::estimate::PatternEstimate {
            pattern: format!("e{}", i + 1),
            is_path: false,
            estimated_rows: rows,
            syntactic_score: pruning_score(&aq, &aq.patterns[i]),
            actual_rows: None,
        };
        let estimates = vec![est(0, Some(50.0)), est(1, Some(2.0)), est(2, Some(7.0))];
        assert_eq!(cost_based_order(&aq, &estimates), vec![1, 2, 0]);
        // Patterns without an estimate sort last; full ties fall back to
        // query order.
        let estimates = vec![est(0, None), est(1, Some(3.0)), est(2, Some(3.0))];
        assert_eq!(cost_based_order(&aq, &estimates), vec![1, 2, 0]);
    }

    #[test]
    fn shared_entity_filter_counts_for_both_patterns() {
        // p is filtered once but constrains both patterns that use it.
        let aq = analyzed(
            r#"proc p["%tar%"] read file f1 as e1
               proc p write file f2 as e2
               proc q read file f3 as e3
               return f1"#,
        );
        assert!(pruning_score(&aq, &aq.patterns[1]) > pruning_score(&aq, &aq.patterns[2]));
    }

    #[test]
    fn chains_follow_shared_variables() {
        // f links e1+e2; e3 is independent; e4 joins e3's chain through q.
        let aq = analyzed(
            r#"proc p read file f as e1
               proc p2 write file f as e2
               proc q read file g as e3
               proc q connect ip i as e4
               return f"#,
        );
        assert_eq!(dependency_chains(&aq, &[0, 1, 2, 3]), vec![vec![0, 1], vec![2, 3]]);
        // Chains preserve the given order as a subsequence and appear in
        // first-pattern order.
        assert_eq!(dependency_chains(&aq, &[2, 1, 3, 0]), vec![vec![2, 3], vec![1, 0]]);
    }

    #[test]
    fn fully_connected_query_is_one_chain() {
        let aq = analyzed(
            r#"proc p read file f as e1
               proc p write file g as e2
               return f"#,
        );
        assert_eq!(dependency_chains(&aq, &[1, 0]), vec![vec![1, 0]]);
    }

    #[test]
    fn order_is_deterministic_under_ties() {
        let aq = analyzed(
            r#"proc a read file b as e1
               proc c read file d as e2
               return b"#,
        );
        assert_eq!(execution_order(&aq), vec![0, 1]);
    }
}
