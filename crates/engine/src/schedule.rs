//! Data-query scheduling (Section III-F).
//!
//! "For each TBQL pattern, ThreatRaptor computes a pruning score by counting
//! the number of constraints declared; a TBQL pattern with more constraints
//! has a higher score. For a variable-length event path pattern, we
//! additionally consider the length of the path ...; a pattern with a
//! smaller maximum path length has a higher score. Then ... if two TBQL
//! patterns have dependencies (e.g., connected by the same system entity),
//! ThreatRaptor will first execute the data query whose associated pattern
//! has a higher pruning score, and then use the execution results to
//! constrain the execution of the other data query."

use raptor_tbql::analyze::{APattern, AnalyzedQuery};
use raptor_tbql::{Arrow, AttrExpr, OpExpr, PatternOp};

/// Counts constraint atoms in an attribute expression.
fn attr_atoms(e: &AttrExpr) -> i64 {
    match e {
        AttrExpr::Bare { .. } | AttrExpr::Cmp { .. } | AttrExpr::InSet { .. } => 1,
        AttrExpr::And(a, b) | AttrExpr::Or(a, b) => attr_atoms(a) + attr_atoms(b),
    }
}

fn op_atoms(e: &OpExpr) -> i64 {
    match e {
        OpExpr::Op(_) => 1,
        OpExpr::Not(i) => op_atoms(i),
        OpExpr::And(a, b) | OpExpr::Or(a, b) => op_atoms(a) + op_atoms(b),
    }
}

/// Hop count assumed for unbounded paths when scoring.
const UNBOUNDED_PATH_LEN: u32 = 16;

/// The pruning score of a pattern within its query.
pub fn pruning_score(aq: &AnalyzedQuery, p: &APattern) -> i64 {
    let mut constraints = 0i64;
    for var in [&p.subject, &p.object] {
        if let Some(f) = &aq.entities[var.as_str()].filter {
            constraints += attr_atoms(f);
        }
    }
    match &p.op {
        PatternOp::Event(op) => constraints += op_atoms(op),
        PatternOp::Path { op, .. } => {
            if let Some(op) = op {
                constraints += op_atoms(op);
            }
        }
    }
    if let Some(f) = &p.event_filter {
        constraints += attr_atoms(f);
    }
    if p.window.is_some() {
        constraints += 1;
    }
    constraints += aq.global_windows.len() as i64;

    // Constraints dominate; path length is the penalty term.
    let length_penalty = match &p.op {
        PatternOp::Event(_) => 0,
        PatternOp::Path { arrow: Arrow::Single, .. } => 1,
        PatternOp::Path { max, .. } => max.unwrap_or(UNBOUNDED_PATH_LEN) as i64,
    };
    constraints * 100 - length_penalty
}

/// Execution order: pattern indices sorted by descending pruning score
/// (ties break toward query order, keeping runs deterministic).
pub fn execution_order(aq: &AnalyzedQuery) -> Vec<usize> {
    let mut order: Vec<usize> = (0..aq.patterns.len()).collect();
    order.sort_by_key(|&i| (-pruning_score(aq, &aq.patterns[i]), i));
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use raptor_tbql::{analyze, parse_tbql};

    fn analyzed(text: &str) -> AnalyzedQuery {
        analyze(&parse_tbql(text).unwrap()).unwrap()
    }

    #[test]
    fn more_constraints_scores_higher() {
        let aq = analyzed(
            r#"proc p1["%/bin/tar%"] read file f1["%/etc/passwd%"] as e1
               proc p2 read file f2 as e2
               return f1"#,
        );
        let s1 = pruning_score(&aq, &aq.patterns[0]);
        let s2 = pruning_score(&aq, &aq.patterns[1]);
        assert!(s1 > s2, "{s1} vs {s2}");
        assert_eq!(execution_order(&aq), vec![0, 1]);
    }

    #[test]
    fn shorter_paths_score_higher() {
        let aq = analyzed(
            r#"proc p1["%x%"] ~>(~2)[read] file f1 as e1
               proc p2["%x%"] ~>(~8)[read] file f2 as e2
               return f1"#,
        );
        assert!(pruning_score(&aq, &aq.patterns[0]) > pruning_score(&aq, &aq.patterns[1]));
    }

    #[test]
    fn unbounded_path_scores_lowest() {
        let aq = analyzed(
            r#"proc p1["%x%"] ~>[read] file f1 as e1
               proc p2["%x%"] ~>(~4)[read] file f2 as e2
               return f1"#,
        );
        assert_eq!(execution_order(&aq), vec![1, 0]);
    }

    #[test]
    fn event_beats_path_at_equal_constraints() {
        let aq = analyzed(
            r#"proc p1["%x%"] ~>(~4)[read] file f1 as e1
               proc p2["%x%"] read file f2 as e2
               return f1"#,
        );
        assert_eq!(execution_order(&aq), vec![1, 0]);
    }

    #[test]
    fn shared_entity_filter_counts_for_both_patterns() {
        // p is filtered once but constrains both patterns that use it.
        let aq = analyzed(
            r#"proc p["%tar%"] read file f1 as e1
               proc p write file f2 as e2
               proc q read file f3 as e3
               return f1"#,
        );
        assert!(pruning_score(&aq, &aq.patterns[1]) > pruning_score(&aq, &aq.patterns[2]));
    }

    #[test]
    fn order_is_deterministic_under_ties() {
        let aq = analyzed(
            r#"proc a read file b as e1
               proc c read file d as e2
               return b"#,
        );
        assert_eq!(execution_order(&aq), vec![0, 1]);
    }
}
