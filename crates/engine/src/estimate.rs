//! Cardinality estimation for scheduled data queries.
//!
//! The paper's scheduler orders patterns by a *syntactic* pruning score
//! (constraint count minus a path-length penalty) which cannot tell a
//! highly selective `exename = '/usr/bin/gpg'` from a near-useless
//! `name like '%'`. This module turns a typed pattern request plus the
//! backends' maintained statistics ([`StoreStats`]) into an **estimated
//! output cardinality**, the cost signal `schedule.rs` orders by:
//!
//! * event patterns: `|events| × sel(kind) × sel(event predicates) ×
//!   frac(subject) × frac(object)` under conjunct independence, where the
//!   entity fractions come from the scheduler's *seed* candidate sets when
//!   present (exact — the seeds have already executed by planning time) and
//!   from column statistics otherwise,
//! * path patterns: **decomposition against the path cardinality catalog**
//!   (`raptor_storage::catalog`) — the pattern is split into cataloged
//!   sub-patterns joined on their shared endpoints: exact per-hop-count
//!   walk counts `walks(k, src-class, dst-class)` for `k ≤ CATALOG_K`
//!   (geometric extrapolation from the cataloged ratio beyond), a final-hop
//!   operation selectivity from the per-(class, optype, class) edge
//!   counts, and the subject/object candidate fractions. When the catalog
//!   is cold (or disabled via `RAPTOR_PATH_CATALOG=0`) the estimator falls
//!   back to degree-power expansion à la Pathce: the seeded start set fans
//!   out by the subject class's mean out-degree for the first hop and the
//!   store-wide mean degree per further hop.
//!
//! Either way the result is clamped: **capped** at the catalog's observed
//! reachable-pair count (sources with out-edges × destinations with
//! in-edges) and the candidate cross product, and **floored** at one row
//! when the scheduler seeded either endpoint (seeds exist because earlier
//! patterns matched), so Q-error stays bounded even on the fallback path.
//!
//! Estimates and the measured actual rows are both recorded in
//! `EngineStats` ([`PatternEstimate`]), so scheduler **Q-error** is
//! observable on every query.

use raptor_storage::catalog::{PathCatalog, CATALOG_K};
use raptor_storage::stats::{selectivity, StoreStats};
use raptor_storage::{
    CmpOp, EntityClass, EntitySel, EventPatternQuery, PathPatternQuery, Pred, Value,
};

/// One pattern's cost-model record: the estimate the scheduler ordered by
/// and the actual row count observed during execution.
#[derive(Clone, Debug, PartialEq)]
pub struct PatternEstimate {
    /// The pattern id (`as evtN` / generated `_evtN`).
    pub pattern: String,
    /// Path pattern (graph backend) vs event pattern (relational backend).
    pub is_path: bool,
    /// Estimated result rows from backend statistics; `None` when the
    /// scheduler fell back to (or was pinned to) the syntactic score.
    pub estimated_rows: Option<f64>,
    /// The paper's syntactic pruning score, always computed (the fallback
    /// signal and the baseline the cost model is measured against).
    pub syntactic_score: i64,
    /// Rows the executed data query actually returned; `None` when the
    /// pattern was skipped (an earlier pattern short-circuited the query).
    pub actual_rows: Option<usize>,
}

impl PatternEstimate {
    /// The estimator's Q-error for this pattern: `max(est/actual,
    /// actual/est)` with both sides floored at 0.5 so empty results stay
    /// finite. `None` until both numbers exist.
    pub fn q_error(&self) -> Option<f64> {
        let est = self.estimated_rows?.max(0.5);
        let actual = (self.actual_rows? as f64).max(0.5);
        Some((est / actual).max(actual / est))
    }
}

/// Fraction of an entity class expected to survive the pattern's entity
/// constraint: exact from the seeded candidate set when the scheduler has
/// one, estimated from column statistics otherwise.
fn entity_fraction(stats: &StoreStats, sel: &EntitySel) -> f64 {
    let Some(t) = stats.table(sel.class.table_name()) else {
        return 1.0;
    };
    let rows = t.rows().max(1) as f64;
    match (&sel.id_in, &sel.filter) {
        (Some(ids), _) => (ids.len() as f64 / rows).min(1.0),
        (None, Some(f)) => selectivity(t, f, stats.dict()),
        (None, None) => 1.0,
    }
}

/// Absolute candidate-entity count for one side of a pattern.
fn entity_count(stats: &StoreStats, sel: &EntitySel) -> f64 {
    let rows = stats.table(sel.class.table_name()).map_or(0, |t| t.rows()) as f64;
    match &sel.id_in {
        Some(ids) => ids.len() as f64,
        None => rows * entity_fraction(stats, sel),
    }
}

/// Estimated result rows of one event-pattern data query against the
/// relational store.
pub fn estimate_event_pattern(req: &EventPatternQuery, rel: &StoreStats) -> f64 {
    let Some(ev) = rel.table("events") else {
        return 0.0;
    };
    let kind = Pred::Cmp {
        attr: "kind".to_string(),
        op: CmpOp::Eq,
        value: Value::Str(rel.dict().intern(req.object.class.event_kind())),
    };
    let mut est = ev.rows() as f64 * selectivity(ev, &kind, rel.dict());
    if let Some(p) = &req.event_pred {
        est *= selectivity(ev, p, rel.dict());
    }
    est *= entity_fraction(rel, &req.subject);
    est *= entity_fraction(rel, &req.object);
    if req.subject_is_object {
        // Self-loops: the object must be the *same* entity the subject
        // already fixed, not any member of its class.
        let obj_rows = rel.table(req.object.class.table_name()).map_or(1, |t| t.rows().max(1));
        est /= obj_rows as f64;
    }
    est
}

/// Estimated result rows of one path-pattern data query against the graph
/// store: decomposition against the path cardinality catalog when it is
/// warm, degree-power expansion as the cold-catalog fallback — both
/// clamped to the observed reachable-pair cap and the seeded-candidate
/// floor (module docs).
pub fn estimate_path_pattern(req: &PathPatternQuery, graph: &StoreStats) -> f64 {
    let start = entity_count(graph, &req.subject);
    let end = entity_count(graph, &req.object);
    let lo = req.min_hops.max(1);
    let hi = req.max_hops.unwrap_or(req.hop_cap).min(req.hop_cap).max(lo);
    let cat = graph.catalog();
    let mut est = if cat.is_warm() {
        decomposition_estimate(req, graph, cat, lo, hi)
    } else {
        degree_power_estimate(req, graph, lo, hi)
    };
    if cat.is_warm() {
        // Hard bound from the catalog: distinct (subject, object) pairs
        // cannot exceed sources-with-out-edges × sinks-with-in-edges.
        est = est.min(cat.reachable_pairs(req.subject.class, req.object.class) as f64);
    }
    // Results are DISTINCT (subject, object[, final event]) bindings:
    // bounded by the candidate cross product.
    est = est.min(start.max(1.0) * end.max(1.0));
    if req.subject.id_in.is_some() || req.object.id_in.is_some() {
        // Seeded-candidate floor: the scheduler only seeds an endpoint
        // after an earlier pattern matched it, so a vanishing estimate is
        // overconfident — never drop below one expected row.
        est = est.max(1.0);
    }
    est
}

/// Decomposed estimate: exact cataloged walk counts per hop length joined
/// with the endpoint candidate fractions and the final-hop operation
/// selectivity; hop counts beyond [`CATALOG_K`] extrapolate geometrically
/// from the cataloged `walks(K)/walks(K-1)` ratio.
fn decomposition_estimate(
    req: &PathPatternQuery,
    graph: &StoreStats,
    cat: &PathCatalog,
    lo: u32,
    hi: u32,
) -> f64 {
    let (c, d) = (req.subject.class, req.object.class);
    let class_nodes = |cl: EntityClass| graph.degree(cl).map_or(0, |ds| ds.nodes).max(1) as f64;
    let subj_frac = (entity_count(graph, &req.subject) / class_nodes(c)).min(1.0);
    let obj_frac = if req.subject_is_object {
        // The path must close back on its start node.
        1.0 / class_nodes(d)
    } else {
        (entity_count(graph, &req.object) / class_nodes(d)).min(1.0)
    };
    let final_sel = match &req.final_hop_pred {
        Some(p) => final_hop_selectivity(p, cat, d, graph),
        None => 1.0,
    };
    let wk1 = cat.walks(CATALOG_K - 1, c, d) as f64;
    let wk = cat.walks(CATALOG_K, c, d) as f64;
    let ratio = if wk1 > 0.0 {
        wk / wk1
    } else {
        graph.total_edges() as f64 / graph.total_nodes().max(1) as f64
    };
    let mut total = 0.0;
    for k in lo..=hi {
        total += if k <= CATALOG_K {
            cat.walks(k, c, d) as f64
        } else {
            wk * ratio.powi((k - CATALOG_K) as i32)
        };
    }
    total * final_sel * subj_frac * obj_frac
}

/// Selectivity of a final-hop predicate: `optype` equality atoms are
/// answered **exactly** from the catalog's per-(class, optype, class) edge
/// counts restricted to edges landing on the object class; everything else
/// falls back to the events-table column statistics.
fn final_hop_selectivity(
    pred: &Pred,
    cat: &PathCatalog,
    d: EntityClass,
    graph: &StoreStats,
) -> f64 {
    let into = cat.edges_into_class(d).max(1) as f64;
    let op_frac = |v: &Value| -> Option<f64> {
        let sym = v.as_sym()?;
        // `%` wildcards carry LIKE semantics: not an exact op lookup.
        if graph.dict().resolve(sym).contains('%') {
            return None;
        }
        Some(cat.op_into_class(sym, d) as f64 / into)
    };
    let sel = match pred {
        Pred::Cmp { attr, op: CmpOp::Eq, value } if attr == "optype" => match op_frac(value) {
            Some(f) => f,
            None => fallback_selectivity(pred, graph),
        },
        Pred::Cmp { attr, op: CmpOp::Ne, value } if attr == "optype" => match op_frac(value) {
            Some(f) => 1.0 - f,
            None => fallback_selectivity(pred, graph),
        },
        Pred::InSet { attr, negated, values } if attr == "optype" => {
            match values.iter().map(op_frac).collect::<Option<Vec<f64>>>() {
                Some(fs) => {
                    let f: f64 = fs.iter().sum::<f64>().clamp(0.0, 1.0);
                    if *negated {
                        1.0 - f
                    } else {
                        f
                    }
                }
                None => fallback_selectivity(pred, graph),
            }
        }
        Pred::And(a, b) => {
            final_hop_selectivity(a, cat, d, graph) * final_hop_selectivity(b, cat, d, graph)
        }
        Pred::Or(a, b) => {
            let (sa, sb) =
                (final_hop_selectivity(a, cat, d, graph), final_hop_selectivity(b, cat, d, graph));
            sa + sb - sa * sb
        }
        Pred::Not(inner) => 1.0 - final_hop_selectivity(inner, cat, d, graph),
        other => fallback_selectivity(other, graph),
    };
    sel.clamp(0.0, 1.0)
}

fn fallback_selectivity(pred: &Pred, graph: &StoreStats) -> f64 {
    graph.table("events").map_or(1.0, |t| selectivity(t, pred, graph.dict()))
}

/// The pre-catalog estimator, kept as the cold/disabled-catalog fallback:
/// degree-power expansion over the adjacency summaries.
fn degree_power_estimate(req: &PathPatternQuery, graph: &StoreStats, lo: u32, hi: u32) -> f64 {
    let total_nodes = graph.total_nodes().max(1) as f64;
    let total_edges = graph.total_edges() as f64;
    let start = entity_count(graph, &req.subject);
    let end = entity_count(graph, &req.object);
    // First hop: the subject class's mean out-degree; later hops: the
    // store-wide mean (intermediate nodes are unlabeled).
    let first_fanout = graph.degree(req.subject.class).map_or(0.0, |d| d.avg_out());
    let fanout = total_edges / total_nodes;
    let final_sel = match &req.final_hop_pred {
        Some(p) => graph.table("events").map_or(1.0, |t| selectivity(t, p, graph.dict())),
        None => 1.0,
    };
    let end_frac = if req.subject_is_object {
        // The path must close back on its start node.
        1.0 / total_nodes
    } else {
        (end / total_nodes).min(1.0)
    };
    let mut total = 0.0;
    let mut frontier = start * first_fanout;
    for h in 1..=hi {
        if h >= lo {
            total += frontier * final_sel * end_frac;
        }
        frontier *= fanout;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use raptor_storage::EntityClass;

    /// 10 processes, 5 files; 100 events: 80 file reads, 15 file writes,
    /// 5 network connects.
    fn stats() -> StoreStats {
        let mut s = StoreStats::default();
        // Env-independent: these tests pin catalog behaviour, so force the
        // catalog on even under `RAPTOR_PATH_CATALOG=0`.
        *s.catalog_mut() = raptor_storage::PathCatalog::new(true);
        for id in 0..10 {
            s.record_node(EntityClass::Process, id);
            let exe = s.dict().intern(if id == 0 { "/usr/bin/gpg" } else { "/bin/noise" });
            let t = s.table_mut("processes");
            t.record_row();
            t.record_sym("exename", exe);
        }
        for id in 10..15 {
            s.record_node(EntityClass::File, id);
            s.table_mut("files").record_row();
        }
        for i in 0..100u32 {
            let (op, kind) = match i {
                0..=79 => ("read", "file"),
                80..=94 => ("write", "file"),
                _ => ("connect", "network"),
            };
            let (op, kind) = (s.dict().intern(op), s.dict().intern(kind));
            let t = s.table_mut("events");
            t.record_row();
            t.record_sym("optype", op);
            t.record_sym("kind", kind);
            s.record_edge((i % 10) as i64, 10 + (i % 5) as i64, Some(op));
        }
        s
    }

    fn op_eq(s: &StoreStats, op: &str) -> Pred {
        Pred::Cmp { attr: "optype".into(), op: CmpOp::Eq, value: Value::Str(s.dict().intern(op)) }
    }

    #[test]
    fn frequency_drives_event_estimates() {
        let s = stats();
        let base = |op: &str| EventPatternQuery {
            subject: EntitySel::of(EntityClass::Process, None),
            object: EntitySel::of(EntityClass::File, None),
            event_pred: Some(op_eq(&s, op)),
            event_id_in: None,
            subject_is_object: false,
        };
        let reads = estimate_event_pattern(&base("read"), &s);
        let writes = estimate_event_pattern(&base("write"), &s);
        assert!(reads > writes, "{reads} vs {writes}");
        // 100 events × 0.95 kind=file × 0.8 optype=read.
        assert!((reads - 76.0).abs() < 1e-6, "{reads}");
    }

    #[test]
    fn seeded_candidates_sharpen_estimates() {
        let s = stats();
        let mut subject = EntitySel::of(EntityClass::Process, None);
        subject.id_in = Some(vec![0]);
        let q = EventPatternQuery {
            subject,
            object: EntitySel::of(EntityClass::File, None),
            event_pred: Some(op_eq(&s, "read")),
            event_id_in: None,
            subject_is_object: false,
        };
        let est = estimate_event_pattern(&q, &s);
        // One of ten processes: a tenth of the unseeded estimate.
        assert!(est < 10.0, "{est}");
    }

    fn path(s: &StoreStats, max: Option<u32>) -> PathPatternQuery {
        PathPatternQuery {
            subject: EntitySel::of(EntityClass::Process, None),
            object: EntitySel::of(EntityClass::File, None),
            min_hops: 1,
            max_hops: max,
            hop_cap: 16,
            final_hop_pred: Some(op_eq(s, "read")),
            final_event_id_in: None,
            want_event: true,
            subject_is_object: false,
        }
    }

    /// With a warm catalog the estimator *knows* files dead-end (no
    /// process→…→file walk is longer than one hop in this fixture), so
    /// extra hop budget no longer inflates the estimate — and everything
    /// is clamped at the observed reachable-pair count (10×5 = 50).
    #[test]
    fn catalog_decomposition_sees_dead_ends() {
        let s = stats();
        assert!(s.catalog().is_warm());
        let one = estimate_path_pattern(&path(&s, Some(1)), &s);
        let four = estimate_path_pattern(&path(&s, Some(4)), &s);
        assert!(one > 0.0);
        assert!((four - one).abs() < 1e-9, "{four} vs {one}");
        assert!(one <= 50.0 + 1e-9, "{one}");
        let unbounded = estimate_path_pattern(&path(&s, None), &s);
        assert!(unbounded.is_finite());
        assert!(unbounded <= 50.0 + 1e-9, "{unbounded}");
    }

    /// Multi-hop connectivity *is* credited when the catalog has walks: a
    /// sparse process chain ending in one file read gains estimate with
    /// every hop of budget, while staying under the reachable-pair cap.
    #[test]
    fn catalog_decomposition_grows_with_real_walks() {
        let mut s = StoreStats::default();
        *s.catalog_mut() = raptor_storage::PathCatalog::new(true);
        for id in 0..10 {
            s.record_node(EntityClass::Process, id);
            s.table_mut("processes").record_row();
        }
        for id in 10..15 {
            s.record_node(EntityClass::File, id);
            s.table_mut("files").record_row();
        }
        // Chain 0→1→2→3 (fork), then 3→10 (read).
        for (u, v, op) in [(0i64, 1i64, "fork"), (1, 2, "fork"), (2, 3, "fork"), (3, 10, "read")] {
            let op = s.dict().intern(op);
            let t = s.table_mut("events");
            t.record_row();
            t.record_sym("optype", op);
            s.record_edge(u, v, Some(op));
        }
        let one = estimate_path_pattern(&path(&s, Some(1)), &s);
        let four = estimate_path_pattern(&path(&s, Some(4)), &s);
        assert!(one > 0.0);
        assert!(four > one, "{four} vs {one}");
    }

    /// The cold-catalog fallback keeps the old degree-power behaviour —
    /// estimates grow with hops — but is now clamped by the candidate
    /// cross product and floored at one row when an endpoint is seeded.
    #[test]
    fn degree_power_fallback_is_clamped() {
        let mut s = stats();
        *s.catalog_mut() = raptor_storage::PathCatalog::new(false);
        assert!(!s.catalog().is_warm());
        let one = estimate_path_pattern(&path(&s, Some(1)), &s);
        let four = estimate_path_pattern(&path(&s, Some(4)), &s);
        assert!(one > 0.0);
        assert!(four > one, "{four} vs {one}");
        // The cross-product cap keeps unbounded paths finite.
        let unbounded = estimate_path_pattern(&path(&s, None), &s);
        assert!(unbounded.is_finite());
        assert!(unbounded <= 10.0 * 5.0 + 1e-9, "{unbounded}");
        // Seeded-candidate floor: seeds exist because earlier patterns
        // matched, so the estimate never collapses to zero.
        let mut seeded = path(&s, Some(1));
        seeded.subject.id_in = Some(vec![7]);
        seeded.final_hop_pred = Some(op_eq(&s, "no-such-op"));
        let est = estimate_path_pattern(&seeded, &s);
        assert!(est >= 1.0, "{est}");
    }

    #[test]
    fn q_error_is_finite_even_on_empty_results() {
        let pe = PatternEstimate {
            pattern: "e1".into(),
            is_path: false,
            estimated_rows: Some(0.0),
            syntactic_score: 100,
            actual_rows: Some(0),
        };
        assert_eq!(pe.q_error(), Some(1.0));
        let pe = PatternEstimate { estimated_rows: Some(8.0), actual_rows: Some(2), ..pe };
        assert_eq!(pe.q_error(), Some(4.0));
        let pe = PatternEstimate { actual_rows: None, ..pe };
        assert_eq!(pe.q_error(), None);
    }
}
