//! Cardinality estimation for scheduled data queries.
//!
//! The paper's scheduler orders patterns by a *syntactic* pruning score
//! (constraint count minus a path-length penalty) which cannot tell a
//! highly selective `exename = '/usr/bin/gpg'` from a near-useless
//! `name like '%'`. This module turns a typed pattern request plus the
//! backends' maintained statistics ([`StoreStats`]) into an **estimated
//! output cardinality**, the cost signal `schedule.rs` orders by:
//!
//! * event patterns: `|events| × sel(kind) × sel(event predicates) ×
//!   frac(subject) × frac(object)` under conjunct independence, where the
//!   entity fractions come from the scheduler's *seed* candidate sets when
//!   present (exact — the seeds have already executed by planning time) and
//!   from column statistics otherwise,
//! * path patterns: degree-power expansion à la Pathce — the seeded start
//!   set fans out by the subject class's mean out-degree for the first hop
//!   and the store-wide mean degree per further hop, capped at the
//!   engine's hop cap exactly like the syntactic score caps unbounded
//!   paths, then lands on the object class with a final-hop operation
//!   selectivity from the event-op frequency table.
//!
//! Estimates and the measured actual rows are both recorded in
//! `EngineStats` ([`PatternEstimate`]), so scheduler **Q-error** is
//! observable on every query.

use raptor_storage::stats::{selectivity, StoreStats};
use raptor_storage::{CmpOp, EntitySel, EventPatternQuery, PathPatternQuery, Pred, Value};

/// One pattern's cost-model record: the estimate the scheduler ordered by
/// and the actual row count observed during execution.
#[derive(Clone, Debug, PartialEq)]
pub struct PatternEstimate {
    /// The pattern id (`as evtN` / generated `_evtN`).
    pub pattern: String,
    /// Path pattern (graph backend) vs event pattern (relational backend).
    pub is_path: bool,
    /// Estimated result rows from backend statistics; `None` when the
    /// scheduler fell back to (or was pinned to) the syntactic score.
    pub estimated_rows: Option<f64>,
    /// The paper's syntactic pruning score, always computed (the fallback
    /// signal and the baseline the cost model is measured against).
    pub syntactic_score: i64,
    /// Rows the executed data query actually returned; `None` when the
    /// pattern was skipped (an earlier pattern short-circuited the query).
    pub actual_rows: Option<usize>,
}

impl PatternEstimate {
    /// The estimator's Q-error for this pattern: `max(est/actual,
    /// actual/est)` with both sides floored at 0.5 so empty results stay
    /// finite. `None` until both numbers exist.
    pub fn q_error(&self) -> Option<f64> {
        let est = self.estimated_rows?.max(0.5);
        let actual = (self.actual_rows? as f64).max(0.5);
        Some((est / actual).max(actual / est))
    }
}

/// Fraction of an entity class expected to survive the pattern's entity
/// constraint: exact from the seeded candidate set when the scheduler has
/// one, estimated from column statistics otherwise.
fn entity_fraction(stats: &StoreStats, sel: &EntitySel) -> f64 {
    let Some(t) = stats.table(sel.class.table_name()) else {
        return 1.0;
    };
    let rows = t.rows().max(1) as f64;
    match (&sel.id_in, &sel.filter) {
        (Some(ids), _) => (ids.len() as f64 / rows).min(1.0),
        (None, Some(f)) => selectivity(t, f, stats.dict()),
        (None, None) => 1.0,
    }
}

/// Absolute candidate-entity count for one side of a pattern.
fn entity_count(stats: &StoreStats, sel: &EntitySel) -> f64 {
    let rows = stats.table(sel.class.table_name()).map_or(0, |t| t.rows()) as f64;
    match &sel.id_in {
        Some(ids) => ids.len() as f64,
        None => rows * entity_fraction(stats, sel),
    }
}

/// Estimated result rows of one event-pattern data query against the
/// relational store.
pub fn estimate_event_pattern(req: &EventPatternQuery, rel: &StoreStats) -> f64 {
    let Some(ev) = rel.table("events") else {
        return 0.0;
    };
    let kind = Pred::Cmp {
        attr: "kind".to_string(),
        op: CmpOp::Eq,
        value: Value::Str(rel.dict().intern(req.object.class.event_kind())),
    };
    let mut est = ev.rows() as f64 * selectivity(ev, &kind, rel.dict());
    if let Some(p) = &req.event_pred {
        est *= selectivity(ev, p, rel.dict());
    }
    est *= entity_fraction(rel, &req.subject);
    est *= entity_fraction(rel, &req.object);
    if req.subject_is_object {
        // Self-loops: the object must be the *same* entity the subject
        // already fixed, not any member of its class.
        let obj_rows = rel.table(req.object.class.table_name()).map_or(1, |t| t.rows().max(1));
        est /= obj_rows as f64;
    }
    est
}

/// Estimated result rows of one path-pattern data query against the graph
/// store, by degree-power expansion over the adjacency summaries.
pub fn estimate_path_pattern(req: &PathPatternQuery, graph: &StoreStats) -> f64 {
    let total_nodes = graph.total_nodes().max(1) as f64;
    let total_edges = graph.total_edges() as f64;
    let start = entity_count(graph, &req.subject);
    let end = entity_count(graph, &req.object);
    // First hop: the subject class's mean out-degree; later hops: the
    // store-wide mean (intermediate nodes are unlabeled).
    let first_fanout = graph.degree(req.subject.class).map_or(0.0, |d| d.avg_out());
    let fanout = total_edges / total_nodes;
    let final_sel = match &req.final_hop_pred {
        Some(p) => graph.table("events").map_or(1.0, |t| selectivity(t, p, graph.dict())),
        None => 1.0,
    };
    let end_frac = if req.subject_is_object {
        // The path must close back on its start node.
        1.0 / total_nodes
    } else {
        (end / total_nodes).min(1.0)
    };
    let lo = req.min_hops.max(1);
    let hi = req.max_hops.unwrap_or(req.hop_cap).min(req.hop_cap).max(lo);
    let mut total = 0.0;
    let mut frontier = start * first_fanout;
    for h in 1..=hi {
        if h >= lo {
            total += frontier * final_sel * end_frac;
        }
        frontier *= fanout;
    }
    // Results are DISTINCT (subject, object[, final event]) bindings:
    // bounded by the candidate cross product.
    total.min(start.max(1.0) * end.max(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use raptor_storage::EntityClass;

    /// 10 processes, 5 files; 100 events: 80 file reads, 15 file writes,
    /// 5 network connects.
    fn stats() -> StoreStats {
        let mut s = StoreStats::default();
        for id in 0..10 {
            s.record_node(EntityClass::Process, id);
            let exe = s.dict().intern(if id == 0 { "/usr/bin/gpg" } else { "/bin/noise" });
            let t = s.table_mut("processes");
            t.record_row();
            t.record_sym("exename", exe);
        }
        for id in 10..15 {
            s.record_node(EntityClass::File, id);
            s.table_mut("files").record_row();
        }
        for i in 0..100u32 {
            let (op, kind) = match i {
                0..=79 => ("read", "file"),
                80..=94 => ("write", "file"),
                _ => ("connect", "network"),
            };
            let (op, kind) = (s.dict().intern(op), s.dict().intern(kind));
            let t = s.table_mut("events");
            t.record_row();
            t.record_sym("optype", op);
            t.record_sym("kind", kind);
            s.record_edge((i % 10) as i64, 10 + (i % 5) as i64);
        }
        s
    }

    fn op_eq(s: &StoreStats, op: &str) -> Pred {
        Pred::Cmp { attr: "optype".into(), op: CmpOp::Eq, value: Value::Str(s.dict().intern(op)) }
    }

    #[test]
    fn frequency_drives_event_estimates() {
        let s = stats();
        let base = |op: &str| EventPatternQuery {
            subject: EntitySel::of(EntityClass::Process, None),
            object: EntitySel::of(EntityClass::File, None),
            event_pred: Some(op_eq(&s, op)),
            event_id_in: None,
            subject_is_object: false,
        };
        let reads = estimate_event_pattern(&base("read"), &s);
        let writes = estimate_event_pattern(&base("write"), &s);
        assert!(reads > writes, "{reads} vs {writes}");
        // 100 events × 0.95 kind=file × 0.8 optype=read.
        assert!((reads - 76.0).abs() < 1e-6, "{reads}");
    }

    #[test]
    fn seeded_candidates_sharpen_estimates() {
        let s = stats();
        let mut subject = EntitySel::of(EntityClass::Process, None);
        subject.id_in = Some(vec![0]);
        let q = EventPatternQuery {
            subject,
            object: EntitySel::of(EntityClass::File, None),
            event_pred: Some(op_eq(&s, "read")),
            event_id_in: None,
            subject_is_object: false,
        };
        let est = estimate_event_pattern(&q, &s);
        // One of ten processes: a tenth of the unseeded estimate.
        assert!(est < 10.0, "{est}");
    }

    #[test]
    fn path_estimates_grow_with_hops() {
        let s = stats();
        let path = |max| PathPatternQuery {
            subject: EntitySel::of(EntityClass::Process, None),
            object: EntitySel::of(EntityClass::File, None),
            min_hops: 1,
            max_hops: Some(max),
            hop_cap: 16,
            final_hop_pred: Some(op_eq(&s, "read")),
            final_event_id_in: None,
            want_event: true,
            subject_is_object: false,
        };
        let one = estimate_path_pattern(&path(1), &s);
        let four = estimate_path_pattern(&path(4), &s);
        assert!(one > 0.0);
        assert!(four > one, "{four} vs {one}");
        // The cross-product cap keeps unbounded paths finite.
        let unbounded = PathPatternQuery { max_hops: None, ..path(1) };
        let est = estimate_path_pattern(&unbounded, &s);
        assert!(est.is_finite());
        assert!(est <= 10.0 * 5.0 + 1e-9, "{est}");
    }

    #[test]
    fn q_error_is_finite_even_on_empty_results() {
        let pe = PatternEstimate {
            pattern: "e1".into(),
            is_path: false,
            estimated_rows: Some(0.0),
            syntactic_score: 100,
            actual_rows: Some(0),
        };
        assert_eq!(pe.q_error(), Some(1.0));
        let pe = PatternEstimate { estimated_rows: Some(8.0), actual_rows: Some(2), ..pe };
        assert_eq!(pe.q_error(), Some(4.0));
        let pe = PatternEstimate { actual_rows: None, ..pe };
        assert_eq!(pe.q_error(), None);
    }
}
