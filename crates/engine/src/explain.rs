//! `EXPLAIN` / `EXPLAIN ANALYZE`: rendering the engine's planning and
//! execution decisions as a stable text tree.
//!
//! The engine already records everything an operator needs to understand a
//! scheduled execution — seeded candidate counts, per-pattern cost
//! estimates and syntactic scores, the chosen scheduler and execution
//! order, dependency chains, and (after execution) per-query row counts,
//! wall times and backend-counter deltas in [`QueryInfo`]. This module
//! renders those records; it computes nothing new.
//!
//! * [`Engine::explain`] plans without executing patterns: it seeds entity
//!   candidates (the small indexed lookups the planner itself needs),
//!   runs the scheduler, and renders the plan tree.
//! * [`Engine::explain_analyze`] executes the query and attaches actuals:
//!   rows per pattern, Q-error, access path, segment pruning, wall times.
//!
//! Every line of the plain `EXPLAIN` tree — and the `ANALYZE` tree under
//! [`Redact::Stable`] — is byte-identical at any `RAPTOR_THREADS` and any
//! `RAPTOR_SEGMENT_ROWS`: the golden corpus test pins it. `Redact::Stable`
//! elides exactly the values that legitimately vary with those knobs
//! (wall times; rows/segments scanned, which depend on segment capacity)
//! while keeping the full tree structure, estimates, actual row counts and
//! access-path choices.

use raptor_common::error::Result;
use raptor_tbql::analyze::AnalyzedQuery;
use raptor_tbql::{analyze, parse_tbql, Arrow, PatternOp};

use crate::compile::Propagation;
use crate::exec::{DataPath, Engine, EngineStats, ExecMode, QueryInfo, QueryKind, ResultTable};
use crate::schedule::{dependency_chains, SchedulerMode};

/// What an `ANALYZE` rendering does with run-dependent values.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Redact {
    /// Show everything, including wall times and capacity-dependent scan
    /// counters (the operator view; also what the slow-query log records).
    Full,
    /// Replace wall times and segment-capacity-dependent counters with `~`
    /// so the output is byte-identical across `RAPTOR_THREADS` and
    /// `RAPTOR_SEGMENT_ROWS` (the golden-test view).
    Stable,
}

impl Engine {
    /// Plans `aq` (seeding + scheduling only — no pattern executes) and
    /// renders the plan tree.
    pub fn explain(&self, aq: &AnalyzedQuery) -> Result<String> {
        let ctx = self.ctx(aq);
        let mut prop = Propagation::default();
        let mut stats = EngineStats::default();
        self.seed_entity_candidates(aq, &mut prop, &mut stats, DataPath::Typed)?;
        let (order, estimates, used) = self.plan_order(&ctx, aq, &prop, self.scheduler)?;
        stats.scheduler = Some(used);
        stats.execution_order = order;
        stats.estimates = estimates;
        Ok(render(aq, &stats, None))
    }

    /// Parses and [`explain`](Engine::explain)s a TBQL text.
    pub fn explain_text(&self, tbql: &str) -> Result<String> {
        let q = parse_tbql(tbql)?;
        let aq = analyze(&q)?;
        self.explain(&aq)
    }

    /// Executes `aq` in scheduled mode and renders the ANALYZE tree along
    /// with the result.
    pub fn explain_analyze(
        &self,
        aq: &AnalyzedQuery,
        redact: Redact,
    ) -> Result<(ResultTable, String)> {
        let t0 = std::time::Instant::now();
        let (table, stats) = self.execute(aq, ExecMode::Scheduled)?;
        let wall_ns = t0.elapsed().as_nanos() as u64;
        let report = render_analyze(aq, &stats, Some(wall_ns), table.rows.len(), redact);
        Ok((table, report))
    }

    /// Parses and [`explain_analyze`](Engine::explain_analyze)s a TBQL text.
    pub fn explain_analyze_text(
        &self,
        tbql: &str,
        redact: Redact,
    ) -> Result<(ResultTable, String)> {
        let q = parse_tbql(tbql)?;
        let aq = analyze(&q)?;
        self.explain_analyze(&aq, redact)
    }
}

/// Renders an ANALYZE tree from an already-executed query's stats (the
/// slow-query log calls this on the stats it just observed).
pub fn render_analyze(
    aq: &AnalyzedQuery,
    stats: &EngineStats,
    wall_ns: Option<u64>,
    result_rows: usize,
    redact: Redact,
) -> String {
    render(aq, stats, Some(AnalyzeCtx { wall_ns, result_rows, redact }))
}

struct AnalyzeCtx {
    wall_ns: Option<u64>,
    result_rows: usize,
    redact: Redact,
}

fn ms(ns: u64, redact: Redact) -> String {
    match redact {
        Redact::Stable => "~".to_string(),
        Redact::Full => format!("{:.2}ms", ns as f64 / 1e6),
    }
}

fn volatile(n: usize, redact: Redact) -> String {
    match redact {
        Redact::Stable => "~".to_string(),
        Redact::Full => n.to_string(),
    }
}

/// The access path a query's backend-counter delta reveals.
fn access_of(q: &QueryInfo) -> &'static str {
    let d = &q.delta;
    match (d.index_scans > 0, d.full_scans > 0) {
        (true, true) => "mixed",
        (true, false) => "index",
        (false, true) => "full",
        (false, false) => "-",
    }
}

/// Short operator description for a pattern: `read|write`, `->[start]`,
/// `~>(1~3)[write]`, …
fn op_desc(p: &raptor_tbql::analyze::APattern) -> String {
    match &p.op {
        PatternOp::Event(op) => op.op_names().join("|"),
        PatternOp::Path { arrow, min, max, op } => {
            let mut s = match arrow {
                Arrow::Single => "->".to_string(),
                Arrow::Fuzzy => "~>".to_string(),
            };
            if min.is_some() || max.is_some() {
                let b = |v: &Option<u32>| v.map_or(String::new(), |x| x.to_string());
                s.push_str(&format!("({}~{})", b(min), b(max)));
            }
            if let Some(op) = op {
                s.push_str(&format!("[{}]", op.op_names().join("|")));
            }
            s
        }
    }
}

fn render(aq: &AnalyzedQuery, stats: &EngineStats, analyze: Option<AnalyzeCtx>) -> String {
    let mut out = String::new();
    let analyzed = analyze.is_some();
    out.push_str(if analyzed { "EXPLAIN ANALYZE\n" } else { "EXPLAIN\n" });

    // --- scheduler & order ---
    let sched = match stats.scheduler {
        Some(SchedulerMode::CostBased) => "cost_based",
        Some(SchedulerMode::Syntactic) => "syntactic",
        None => "forced",
    };
    out.push_str(&format!("scheduler: {sched}\n"));
    let order_ids: Vec<&str> =
        stats.execution_order.iter().map(|&i| aq.patterns[i].id.as_str()).collect();
    out.push_str(&format!("order: {}\n", order_ids.join(", ")));

    // --- seeds (entity-candidate lookups, in seeding order) ---
    for q in stats.queries.iter().filter(|q| q.kind == QueryKind::Seed) {
        out.push_str(&format!(
            "seed {} [{}] candidates={}",
            q.label,
            q.backend,
            q.rows.map_or_else(|| "?".into(), |r| r.to_string())
        ));
        if let Some(a) = &analyze {
            out.push_str(&format!(" access={} wall={}", access_of(q), ms(q.wall_ns, a.redact)));
        }
        out.push('\n');
    }

    // --- chains and their patterns, in execution order ---
    let chains = dependency_chains(aq, &stats.execution_order);
    for (ci, chain) in chains.iter().enumerate() {
        let ids: Vec<&str> = chain.iter().map(|&i| aq.patterns[i].id.as_str()).collect();
        out.push_str(&format!("chain {}: {}\n", ci + 1, ids.join(" -> ")));
        for &idx in chain {
            let p = &aq.patterns[idx];
            let est = &stats.estimates[idx];
            let kind = if p.is_path() { "path" } else { "event" };
            out.push_str(&format!(
                "  {} [{} {}] ({}, {})",
                p.id,
                kind,
                op_desc(p),
                p.subject,
                p.object
            ));
            match est.estimated_rows {
                Some(e) => out.push_str(&format!(" est_rows={e:.1}")),
                None => out.push_str(" est_rows=-"),
            }
            out.push_str(&format!(" syn_score={}", est.syntactic_score));
            if let Some(a) = &analyze {
                let info = stats.queries.iter().find(|q| {
                    matches!(q.kind, QueryKind::EventPattern | QueryKind::PathPattern)
                        && q.label == p.id
                });
                match info {
                    Some(q) => {
                        out.push_str(&format!(
                            " rows={}",
                            q.rows.map_or_else(|| "?".into(), |r| r.to_string())
                        ));
                        match est.q_error() {
                            Some(qe) => out.push_str(&format!(" q_err={qe:.1}")),
                            None => out.push_str(" q_err=-"),
                        }
                        out.push_str(&format!(
                            " in_lists={} backend={} access={}",
                            q.in_lists,
                            q.backend,
                            access_of(q)
                        ));
                        out.push_str(&format!(
                            " scanned={} segments={}+{}p",
                            volatile(q.delta.items_scanned, a.redact),
                            volatile(q.delta.segments_scanned, a.redact),
                            volatile(q.delta.segments_pruned, a.redact),
                        ));
                        if q.delta.edges_traversed > 0 {
                            out.push_str(&format!(" edges={}", q.delta.edges_traversed));
                        }
                        out.push_str(&format!(" wall={}", ms(q.wall_ns, a.redact)));
                    }
                    None => out.push_str(" skipped (chain short-circuited)"),
                }
            }
            out.push('\n');
        }
    }

    // --- join / projection summary ---
    let proj: Vec<String> = aq.ret.iter().map(|r| format!("{}.{}", r.base, r.attr)).collect();
    out.push_str(&format!(
        "join patterns={} with_clauses={}\nproject: [{}]{}\n",
        aq.patterns.len(),
        aq.relations.len(),
        proj.join(", "),
        if aq.distinct { " distinct" } else { "" }
    ));

    // --- execution totals (ANALYZE only) ---
    if let Some(a) = analyze {
        if stats.short_circuited {
            out.push_str("short_circuited: true\n");
        }
        let b = &stats.backend;
        out.push_str(&format!(
            "totals: rows={} data_queries={} index_scans={} full_scans={} \
             items_scanned={} items_built={} segments_scanned={} segments_pruned={} \
             edges_traversed={} strings_materialized={} wall={}\n",
            a.result_rows,
            stats.data_queries,
            b.index_scans,
            b.full_scans,
            volatile(b.items_scanned, a.redact),
            volatile(b.items_built, a.redact),
            volatile(b.segments_scanned, a.redact),
            volatile(b.segments_pruned, a.redact),
            b.edges_traversed,
            stats.strings_materialized,
            a.wall_ns.map_or_else(|| "-".into(), |w| ms(w, a.redact)),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explain_renders_plan_without_executing_patterns() {
        let engine = crate::exec::tests::fig2_engine();
        let tree = engine.explain_text(raptor_tbql::parser::FIG2_QUERY).unwrap();
        assert!(tree.starts_with("EXPLAIN\n"), "{tree}");
        assert!(tree.contains("scheduler: cost_based"), "{tree}");
        assert!(tree.contains("order: "), "{tree}");
        assert!(tree.contains("seed f1 [relational] candidates="), "{tree}");
        assert!(tree.contains("chain 1:"), "{tree}");
        assert!(tree.contains("est_rows="), "{tree}");
        assert!(tree.contains("syn_score="), "{tree}");
        // Plan-only: no per-pattern actuals.
        assert!(!tree.contains("q_err="), "{tree}");
        assert!(!tree.contains("totals:"), "{tree}");
    }

    #[test]
    fn explain_analyze_attaches_actuals() {
        let engine = crate::exec::tests::fig2_engine();
        let (table, tree) =
            engine.explain_analyze_text(raptor_tbql::parser::FIG2_QUERY, Redact::Full).unwrap();
        assert_eq!(table.rows.len(), 1);
        assert!(tree.starts_with("EXPLAIN ANALYZE\n"), "{tree}");
        assert!(tree.contains(" rows="), "{tree}");
        assert!(tree.contains(" q_err="), "{tree}");
        assert!(tree.contains(" access="), "{tree}");
        assert!(tree.contains("wall="), "{tree}");
        assert!(tree.contains("totals: rows=1 "), "{tree}");
        // Full redaction shows real numbers, not tildes.
        assert!(!tree.contains("wall=~"), "{tree}");
    }

    #[test]
    fn stable_redaction_is_run_invariant() {
        let engine = crate::exec::tests::fig2_engine();
        let (_, a) =
            engine.explain_analyze_text(raptor_tbql::parser::FIG2_QUERY, Redact::Stable).unwrap();
        let (_, b) =
            engine.explain_analyze_text(raptor_tbql::parser::FIG2_QUERY, Redact::Stable).unwrap();
        assert_eq!(a, b);
        assert!(a.contains("wall=~"), "{a}");
        assert!(a.contains("scanned=~"), "{a}");
        // Structure and deterministic facts survive redaction.
        assert!(a.contains(" rows="), "{a}");
        assert!(a.contains(" access="), "{a}");
    }

    #[test]
    fn explain_shows_short_circuit() {
        let engine = crate::exec::tests::fig2_engine();
        let q = "proc p[\"%/bin/nonexistent%\"] read file f as e1 \
                 proc p write file f2 as e2 return p, f";
        let (table, tree) = engine.explain_analyze_text(q, Redact::Full).unwrap();
        assert!(table.rows.is_empty());
        assert!(tree.contains("short_circuited: true"), "{tree}");
        assert!(tree.contains("skipped (chain short-circuited)"), "{tree}");
    }
}
