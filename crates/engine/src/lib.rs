//! The TBQL query execution engine (Section III-F).
//!
//! Executes analyzed TBQL queries against the two storage backends:
//!
//! * [`load`] — loads a parsed audit log into the relational store (entity +
//!   event tables with hash/btree/trigram indexes) and the graph store
//!   (entities as nodes, events as edges), replicating data across both as
//!   the paper does; bulk load and streaming ingest share one append path
//!   (`load::empty` + `load::append_entity` / `load::append_event`),
//! * [`compile`] — compiles each TBQL pattern into a small, semantically
//!   equivalent SQL (event patterns) or Cypher (path patterns) data query;
//!   also emits the *giant* whole-query SQL/Cypher used as baselines and for
//!   the Table X conciseness comparison,
//! * [`schedule`] — the data-query scheduling algorithm: patterns ordered
//!   by *estimated output cardinality* from the backends' maintained
//!   statistics (the cost-based default), falling back to the paper's
//!   syntactic pruning score when stats are absent; intermediate results
//!   propagate into dependent patterns as `IN` filters either way,
//! * [`estimate`] — the cardinality estimator feeding the scheduler:
//!   predicate selectivity from distinct/top-k/histogram column stats,
//!   path patterns via degree-power expansion over adjacency summaries,
//!   with per-pattern estimated-vs-actual (Q-error) observability,
//! * [`exec`] — the [`exec::Engine`]: scheduled execution, cross-pattern
//!   joins on shared entities, `with`-clause evaluation, projection; plus
//!   the giant-SQL and giant-Cypher execution paths,
//! * [`explain`] — `EXPLAIN` / `EXPLAIN ANALYZE`: renders the planning and
//!   execution decisions the engine records (estimates, order, access
//!   paths, Q-error, segment pruning) as a stable text tree; also the
//!   report attached to slow-query log entries,
//! * [`standing`] — standing queries for the streaming mode: registered
//!   once, re-evaluated per ingestion epoch with delta evaluation (only
//!   new events are matched; match sets and propagated candidate id-sets
//!   grow monotonically), emitting per-epoch result deltas,
//! * [`provenance`] / [`fuzzy`] — the fuzzy search mode: Poirot-style
//!   inexact graph pattern matching with Levenshtein node alignment and
//!   ancestor-influence scoring; the Poirot baseline stops at the first
//!   acceptable alignment, ThreatRaptor-Fuzzy searches exhaustively,
//! * [`wal`] / [`checkpoint`] — the durability plane: a checksummed binary
//!   write-ahead log hooked below the load seam, and checkpoints that
//!   serialize the dictionary, columnar segments + zone maps, session
//!   position and standing-query state, restored by replaying rows through
//!   the very same seam (identical-by-construction recovery).

pub mod checkpoint;
pub mod compile;
pub mod estimate;
pub mod exec;
pub mod explain;
pub mod fuzzy;
pub mod load;
pub mod provenance;
pub mod schedule;
pub mod standing;
pub mod wal;

pub use checkpoint::{Restored, SessionMeta, StandingSnap, CKPT_FILE};
pub use estimate::PatternEstimate;
pub use exec::{Engine, ExecMode, ResultTable};
pub use explain::Redact;
pub use load::LoadedStores;
pub use schedule::SchedulerMode;
pub use standing::{EpochInput, PatternProgress, StandingQuery};
pub use wal::{WalRecord, WalScan, WalSink, WAL_FILE};
