//! Loading parsed audit data into the storage backends.
//!
//! The paper replicates data across PostgreSQL and Neo4j "which supports the
//! execution of different types of queries and improves data availability",
//! with indexes on key attributes (file name, process executable name,
//! source/destination IP). This module does the same against our embedded
//! engines, using one consistent entity id across both stores.

use raptor_audit::{EntityAttrs, EntityKind, ParsedLog};
use raptor_common::error::Result;
use raptor_graphstore::graph::PropIns;
use raptor_graphstore::Graph;
use raptor_relstore::db::Ins;
use raptor_relstore::{ColumnDef, ColumnType, Database, TableSchema};

/// Both backends, loaded with the same data.
pub struct LoadedStores {
    pub rel: Database,
    pub graph: Graph,
    /// Max event end time (reference point for `last N unit` windows).
    pub now_ns: i64,
}

/// Node labels used in the graph store.
pub const LABEL_PROCESS: &str = "Process";
pub const LABEL_FILE: &str = "File";
pub const LABEL_NETCONN: &str = "NetConn";
pub const LABEL_EVENT: &str = "EVENT";

/// Table name for an entity kind.
pub fn table_for(kind: EntityKind) -> &'static str {
    match kind {
        EntityKind::File => "files",
        EntityKind::Process => "processes",
        EntityKind::NetConn => "netconns",
    }
}

/// Graph label for an entity kind.
pub fn label_for(kind: EntityKind) -> &'static str {
    match kind {
        EntityKind::File => LABEL_FILE,
        EntityKind::Process => LABEL_PROCESS,
        EntityKind::NetConn => LABEL_NETCONN,
    }
}

fn audit_schema() -> Vec<TableSchema> {
    use ColumnType::*;
    vec![
        TableSchema::new(
            "files",
            vec![
                ColumnDef::new("id", Int),
                ColumnDef::new("name", Str),
                ColumnDef::new("path", Str),
                ColumnDef::new("user", Str),
                ColumnDef::new("group", Str),
                ColumnDef::new("host", Int),
            ],
        ),
        TableSchema::new(
            "processes",
            vec![
                ColumnDef::new("id", Int),
                ColumnDef::new("pid", Int),
                ColumnDef::new("exename", Str),
                ColumnDef::new("user", Str),
                ColumnDef::new("group", Str),
                ColumnDef::new("cmd", Str),
                ColumnDef::new("host", Int),
            ],
        ),
        TableSchema::new(
            "netconns",
            vec![
                ColumnDef::new("id", Int),
                ColumnDef::new("srcip", Str),
                ColumnDef::new("srcport", Int),
                ColumnDef::new("dstip", Str),
                ColumnDef::new("dstport", Int),
                ColumnDef::new("protocol", Str),
                ColumnDef::new("host", Int),
            ],
        ),
        TableSchema::new(
            "events",
            vec![
                ColumnDef::new("id", Int),
                ColumnDef::new("subject", Int),
                ColumnDef::new("object", Int),
                ColumnDef::new("optype", Str),
                ColumnDef::new("kind", Str),
                ColumnDef::new("starttime", Time),
                ColumnDef::new("endtime", Time),
                ColumnDef::new("duration", Int),
                ColumnDef::new("amount", Int),
                ColumnDef::new("failcode", Int),
                ColumnDef::new("host", Int),
            ],
        ),
    ]
}

/// Loads a parsed log into both stores and builds the indexes.
pub fn load(log: &ParsedLog) -> Result<LoadedStores> {
    let mut rel = Database::new();
    for schema in audit_schema() {
        rel.create_table(schema)?;
    }

    let mut graph = Graph::new();
    let mut now_ns = i64::MIN;

    // Entities. Graph node ids coincide with entity ids because entities are
    // inserted in id order into an empty graph.
    for e in &log.entities {
        let id = e.id.index() as i64;
        match &e.attrs {
            EntityAttrs::File(f) => {
                rel.insert(
                    "files",
                    &[
                        Ins::Int(id),
                        Ins::Str(&f.name),
                        Ins::Str(&f.path),
                        Ins::Str(&f.user),
                        Ins::Str(&f.group),
                        Ins::Int(e.host as i64),
                    ],
                )?;
                graph.add_node(
                    LABEL_FILE,
                    &[
                        ("id", PropIns::Int(id)),
                        ("name", PropIns::Str(&f.name)),
                        ("path", PropIns::Str(&f.path)),
                        ("user", PropIns::Str(&f.user)),
                        ("group", PropIns::Str(&f.group)),
                        ("host", PropIns::Int(e.host as i64)),
                    ],
                );
            }
            EntityAttrs::Process(p) => {
                rel.insert(
                    "processes",
                    &[
                        Ins::Int(id),
                        Ins::Int(p.pid as i64),
                        Ins::Str(&p.exename),
                        Ins::Str(&p.user),
                        Ins::Str(&p.group),
                        Ins::Str(&p.cmd),
                        Ins::Int(e.host as i64),
                    ],
                )?;
                graph.add_node(
                    LABEL_PROCESS,
                    &[
                        ("id", PropIns::Int(id)),
                        ("pid", PropIns::Int(p.pid as i64)),
                        ("exename", PropIns::Str(&p.exename)),
                        ("user", PropIns::Str(&p.user)),
                        ("group", PropIns::Str(&p.group)),
                        ("cmd", PropIns::Str(&p.cmd)),
                        ("host", PropIns::Int(e.host as i64)),
                    ],
                );
            }
            EntityAttrs::NetConn(n) => {
                rel.insert(
                    "netconns",
                    &[
                        Ins::Int(id),
                        Ins::Str(&n.src_ip),
                        Ins::Int(n.src_port as i64),
                        Ins::Str(&n.dst_ip),
                        Ins::Int(n.dst_port as i64),
                        Ins::Str(n.protocol.name()),
                        Ins::Int(e.host as i64),
                    ],
                )?;
                graph.add_node(
                    LABEL_NETCONN,
                    &[
                        ("id", PropIns::Int(id)),
                        ("srcip", PropIns::Str(&n.src_ip)),
                        ("srcport", PropIns::Int(n.src_port as i64)),
                        ("dstip", PropIns::Str(&n.dst_ip)),
                        ("dstport", PropIns::Int(n.dst_port as i64)),
                        ("protocol", PropIns::Str(n.protocol.name())),
                        ("host", PropIns::Int(e.host as i64)),
                    ],
                );
            }
        }
    }

    // Events.
    for ev in &log.events {
        now_ns = now_ns.max(ev.end.0);
        rel.insert(
            "events",
            &[
                Ins::Int(ev.id.index() as i64),
                Ins::Int(ev.subject.index() as i64),
                Ins::Int(ev.object.index() as i64),
                Ins::Str(ev.op.name()),
                Ins::Str(ev.kind.name()),
                Ins::Int(ev.start.0),
                Ins::Int(ev.end.0),
                Ins::Int(ev.duration().0),
                Ins::Int(ev.amount as i64),
                Ins::Int(ev.fail_code as i64),
                Ins::Int(ev.host as i64),
            ],
        )?;
        let src = raptor_graphstore::NodeId(ev.subject.0);
        let dst = raptor_graphstore::NodeId(ev.object.0);
        graph.add_edge(
            src,
            dst,
            LABEL_EVENT,
            &[
                ("id", PropIns::Int(ev.id.index() as i64)),
                ("optype", PropIns::Str(ev.op.name())),
                ("starttime", PropIns::Int(ev.start.0)),
                ("endtime", PropIns::Int(ev.end.0)),
                ("amount", PropIns::Int(ev.amount as i64)),
                ("failcode", PropIns::Int(ev.fail_code as i64)),
                ("host", PropIns::Int(ev.host as i64)),
            ],
        )?;
    }

    // Indexes on key attributes (paper Section III-B), plus id lookups for
    // scheduler propagation.
    for (table, col) in [
        ("files", "id"),
        ("files", "name"),
        ("processes", "id"),
        ("processes", "exename"),
        ("netconns", "id"),
        ("netconns", "dstip"),
        ("netconns", "srcip"),
        ("events", "id"),
        ("events", "subject"),
        ("events", "object"),
        ("events", "optype"),
    ] {
        rel.create_hash_index(table, col)?;
    }
    for (table, col) in [("files", "name"), ("processes", "exename"), ("netconns", "dstip")] {
        rel.create_trigram_index(table, col)?;
    }
    rel.create_btree_index("events", "starttime")?;

    for (label, key) in [
        (LABEL_PROCESS, "exename"),
        (LABEL_PROCESS, "id"),
        (LABEL_FILE, "name"),
        (LABEL_FILE, "id"),
        (LABEL_NETCONN, "dstip"),
        (LABEL_NETCONN, "id"),
    ] {
        graph.create_node_index(label, key);
    }

    if now_ns == i64::MIN {
        now_ns = 0;
    }
    Ok(LoadedStores { rel, graph, now_ns })
}

#[cfg(test)]
mod tests {
    use super::*;
    use raptor_audit::sim::Simulator;
    use raptor_audit::LogParser;
    use raptor_common::time::Timestamp;

    fn sample_log() -> ParsedLog {
        let mut sim = Simulator::new(5, Timestamp::from_secs(1000));
        let shell = sim.boot_process("/bin/bash", "root");
        let tar = sim.spawn(shell, "/bin/tar", "tar cf /tmp/upload.tar");
        sim.read_file(tar, "/etc/passwd", 4096, 4);
        sim.write_file(tar, "/tmp/upload.tar", 4096, 2);
        let curl = sim.spawn(shell, "/usr/bin/curl", "curl");
        let fd = sim.connect(curl, "192.168.29.128", 443);
        sim.send(curl, fd, 1024, 2);
        sim.exit(curl);
        sim.exit(tar);
        LogParser::parse(&sim.finish())
    }

    #[test]
    fn both_stores_consistent() {
        let log = sample_log();
        let stores = load(&log).unwrap();
        // Same number of entities as rows across entity tables.
        let n_rel: i64 = ["files", "processes", "netconns"]
            .iter()
            .map(|t| stores.rel.query_count(&format!("SELECT COUNT(*) FROM {t}")).unwrap())
            .sum();
        assert_eq!(n_rel as usize, log.entities.len());
        assert_eq!(stores.graph.node_count(), log.entities.len());
        assert_eq!(
            stores.rel.query_count("SELECT COUNT(*) FROM events").unwrap() as usize,
            log.events.len()
        );
        assert_eq!(stores.graph.edge_count(), log.events.len());
    }

    #[test]
    fn indexed_lookup_works_in_both() {
        let stores = load(&sample_log()).unwrap();
        let r =
            stores.rel.query("SELECT id FROM processes WHERE exename LIKE '%/bin/tar%'").unwrap();
        assert_eq!(r.rows.len(), 1);
        assert!(r.stats.index_scans >= 1);
        let sym = stores.graph.dict().get("/bin/tar").unwrap();
        let nodes = stores
            .graph
            .indexed_nodes(LABEL_PROCESS, "exename", raptor_graphstore::PropValue::Str(sym))
            .unwrap();
        assert_eq!(nodes.len(), 1);
        // Same entity id across stores.
        let rel_id = r.rows[0][0].as_int().unwrap();
        let g_id = stores.graph.node_prop(nodes[0], "id").unwrap();
        assert_eq!(g_id, raptor_graphstore::PropValue::Int(rel_id));
    }

    #[test]
    fn now_is_max_end_time() {
        let log = sample_log();
        let stores = load(&log).unwrap();
        let max_end = log.events.iter().map(|e| e.end.0).max().unwrap();
        assert_eq!(stores.now_ns, max_end);
    }
}
