//! Loading parsed audit data into the storage backends.
//!
//! The paper replicates data across PostgreSQL and Neo4j "which supports the
//! execution of different types of queries and improves data availability",
//! with indexes on key attributes (file name, process executable name,
//! source/destination IP). This module does the same against our embedded
//! engines, using one consistent entity id across both stores.
//!
//! Since the streaming subsystem landed there is exactly **one** write path:
//! [`empty`] creates schemas and indexes up front, and every record —
//! whether bulk-loaded by [`load`] or ingested epoch-by-epoch by
//! `raptor-stream` — goes through [`append_entity`] / [`append_event`],
//! which drive both stores' [`MutableBackend`] implementations. Both stores
//! maintain every index on insert, so an incrementally-grown store is
//! identical-by-construction to a bulk-loaded one.

use crate::wal::WalSink;
use raptor_audit::{Entity, EntityAttrs, EntityKind, ParsedLog, SystemEvent};
use raptor_common::error::{Error, Result};
use raptor_common::intern::SharedDict;
use raptor_graphstore::Graph;
use raptor_relstore::{ColumnDef, ColumnType, Database, TableSchema};
use raptor_storage::{BackendStats, EntityClass, Field, FieldValue, MutableBackend};

/// Both backends, loaded with the same data, interning into the same
/// dictionary.
pub struct LoadedStores {
    pub rel: Database,
    pub graph: Graph,
    /// The shared dictionary plane: one append-only, concurrently-readable
    /// dictionary hoisted above both backends, created here and handed to
    /// each store at construction. Equal strings therefore map to equal
    /// [`raptor_common::Sym`]s across the whole pipeline — string equality
    /// in joins, DISTINCT and stream diffing is an integer compare, and
    /// display strings are materialized exactly once, at the edge.
    pub dict: SharedDict,
    /// Max event end time (reference point for `last N unit` windows).
    pub now_ns: i64,
    /// The durability plane's write-ahead log sink. When attached, every
    /// entity/event appended through this seam is logged *before* it is
    /// applied to either backend, so a crash can never leave the stores
    /// ahead of the log. `None` (the default) means volatile operation —
    /// and is also what recovery uses while replaying, so replayed records
    /// are not logged twice.
    pub wal: Option<WalSink>,
}

/// Node labels used in the graph store.
pub const LABEL_PROCESS: &str = "Process";
pub const LABEL_FILE: &str = "File";
pub const LABEL_NETCONN: &str = "NetConn";
pub const LABEL_EVENT: &str = "EVENT";

/// Table name for an entity kind.
pub fn table_for(kind: EntityKind) -> &'static str {
    match kind {
        EntityKind::File => "files",
        EntityKind::Process => "processes",
        EntityKind::NetConn => "netconns",
    }
}

/// Graph label for an entity kind.
pub fn label_for(kind: EntityKind) -> &'static str {
    match kind {
        EntityKind::File => LABEL_FILE,
        EntityKind::Process => LABEL_PROCESS,
        EntityKind::NetConn => LABEL_NETCONN,
    }
}

fn audit_schema() -> Vec<TableSchema> {
    use ColumnType::*;
    vec![
        TableSchema::new(
            "files",
            vec![
                ColumnDef::new("id", Int),
                ColumnDef::new("name", Str),
                ColumnDef::new("path", Str),
                ColumnDef::new("user", Str),
                ColumnDef::new("group", Str),
                ColumnDef::new("host", Int),
            ],
        ),
        TableSchema::new(
            "processes",
            vec![
                ColumnDef::new("id", Int),
                ColumnDef::new("pid", Int),
                ColumnDef::new("exename", Str),
                ColumnDef::new("user", Str),
                ColumnDef::new("group", Str),
                ColumnDef::new("cmd", Str),
                ColumnDef::new("host", Int),
            ],
        ),
        TableSchema::new(
            "netconns",
            vec![
                ColumnDef::new("id", Int),
                ColumnDef::new("srcip", Str),
                ColumnDef::new("srcport", Int),
                ColumnDef::new("dstip", Str),
                ColumnDef::new("dstport", Int),
                ColumnDef::new("protocol", Str),
                ColumnDef::new("host", Int),
            ],
        ),
        TableSchema::new(
            "events",
            vec![
                ColumnDef::new("id", Int),
                ColumnDef::new("subject", Int),
                ColumnDef::new("object", Int),
                ColumnDef::new("optype", Str),
                ColumnDef::new("kind", Str),
                ColumnDef::new("starttime", Time),
                ColumnDef::new("endtime", Time),
                ColumnDef::new("duration", Int),
                ColumnDef::new("amount", Int),
                ColumnDef::new("failcode", Int),
                ColumnDef::new("host", Int),
            ],
        ),
    ]
}

/// Storage entity class for an audit entity kind.
pub fn class_for_kind(kind: EntityKind) -> EntityClass {
    match kind {
        EntityKind::File => EntityClass::File,
        EntityKind::Process => EntityClass::Process,
        EntityKind::NetConn => EntityClass::NetConn,
    }
}

/// Creates empty stores with the audit schema and every index (paper
/// Section III-B: key attributes, plus id lookups for scheduler
/// propagation). Records appended later maintain all of them.
pub fn empty() -> Result<LoadedStores> {
    empty_with_dict(SharedDict::new())
}

/// [`empty`] over a caller-provided dictionary. The durability plane's
/// recovery path restores the checkpointed dictionary first (pinning every
/// interned [`raptor_common::Sym`] to its pre-crash value) and then rebuilds
/// the stores around it, so symbols inside recovered standing-query state
/// stay valid.
pub fn empty_with_dict(dict: SharedDict) -> Result<LoadedStores> {
    let mut rel = Database::with_dict(dict.clone());
    for schema in audit_schema() {
        rel.create_table(schema)?;
    }
    for (table, col) in [
        ("files", "id"),
        ("files", "name"),
        ("processes", "id"),
        ("processes", "exename"),
        ("netconns", "id"),
        ("netconns", "dstip"),
        ("netconns", "srcip"),
        ("events", "id"),
        ("events", "subject"),
        ("events", "object"),
        ("events", "optype"),
    ] {
        rel.create_hash_index(table, col)?;
    }
    for (table, col) in [("files", "name"), ("processes", "exename"), ("netconns", "dstip")] {
        rel.create_trigram_index(table, col)?;
    }
    rel.create_btree_index("events", "starttime")?;

    let mut graph = Graph::with_dict(dict.clone());
    for (label, key) in [
        (LABEL_PROCESS, "exename"),
        (LABEL_PROCESS, "id"),
        (LABEL_FILE, "name"),
        (LABEL_FILE, "id"),
        (LABEL_NETCONN, "dstip"),
        (LABEL_NETCONN, "id"),
    ] {
        graph.create_node_index(label, key);
    }

    Ok(LoadedStores { rel, graph, dict, now_ns: 0, wal: None })
}

/// Appends one entity to both stores through their [`MutableBackend`]s.
///
/// Entities must arrive in dense ascending id order (the audit parser's id
/// space) — graph node ids coincide with entity ids exactly because of this.
pub fn append_entity(
    stores: &mut LoadedStores,
    e: &Entity,
    stats: &mut BackendStats,
) -> Result<()> {
    let id = e.id.index() as i64;
    if id != stores.graph.node_count() as i64 {
        return Err(Error::storage(format!(
            "entity {id} appended out of order (expected {})",
            stores.graph.node_count()
        )));
    }
    if let Some(wal) = &stores.wal {
        wal.log_entity(e)?;
    }
    let host = e.host as i64;
    let fields: Vec<Field<'_>> = match &e.attrs {
        EntityAttrs::File(f) => vec![
            ("name", FieldValue::Str(&f.name)),
            ("path", FieldValue::Str(&f.path)),
            ("user", FieldValue::Str(&f.user)),
            ("group", FieldValue::Str(&f.group)),
            ("host", FieldValue::Int(host)),
        ],
        EntityAttrs::Process(p) => vec![
            ("pid", FieldValue::Int(p.pid as i64)),
            ("exename", FieldValue::Str(&p.exename)),
            ("user", FieldValue::Str(&p.user)),
            ("group", FieldValue::Str(&p.group)),
            ("cmd", FieldValue::Str(&p.cmd)),
            ("host", FieldValue::Int(host)),
        ],
        EntityAttrs::NetConn(n) => vec![
            ("srcip", FieldValue::Str(&n.src_ip)),
            ("srcport", FieldValue::Int(n.src_port as i64)),
            ("dstip", FieldValue::Str(&n.dst_ip)),
            ("dstport", FieldValue::Int(n.dst_port as i64)),
            ("protocol", FieldValue::Str(n.protocol.name())),
            ("host", FieldValue::Int(host)),
        ],
    };
    let class = class_for_kind(e.attrs.kind());
    stores.rel.insert_entity(class, id, &fields, stats)?;
    stores.graph.insert_entity(class, id, &fields, stats)?;
    Ok(())
}

/// Appends one event to both stores; advances the `now_ns` watermark.
pub fn append_event(
    stores: &mut LoadedStores,
    ev: &SystemEvent,
    stats: &mut BackendStats,
) -> Result<()> {
    if let Some(wal) = &stores.wal {
        wal.log_event(ev)?;
    }
    let fields: [Field<'_>; 8] = [
        ("optype", FieldValue::Str(ev.op.name())),
        ("kind", FieldValue::Str(ev.kind.name())),
        ("starttime", FieldValue::Int(ev.start.0)),
        ("endtime", FieldValue::Int(ev.end.0)),
        ("duration", FieldValue::Int(ev.duration().0)),
        ("amount", FieldValue::Int(ev.amount as i64)),
        ("failcode", FieldValue::Int(ev.fail_code as i64)),
        ("host", FieldValue::Int(ev.host as i64)),
    ];
    let (id, subj, obj) =
        (ev.id.index() as i64, ev.subject.index() as i64, ev.object.index() as i64);
    stores.rel.insert_event(id, subj, obj, &fields, stats)?;
    stores.graph.insert_event(id, subj, obj, &fields, stats)?;
    stores.now_ns = stores.now_ns.max(ev.end.0);
    Ok(())
}

/// Appends a whole parsed log (entities first, then events).
pub fn append_log(
    stores: &mut LoadedStores,
    log: &ParsedLog,
    stats: &mut BackendStats,
) -> Result<()> {
    for e in &log.entities {
        append_entity(stores, e, stats)?;
    }
    for ev in &log.events {
        append_event(stores, ev, stats)?;
    }
    Ok(())
}

/// Loads a parsed log into both stores: [`empty`] + [`append_log`]. The
/// streaming path ingests through the very same appenders, so bulk and
/// incremental loads produce identical stores.
pub fn load(log: &ParsedLog) -> Result<LoadedStores> {
    let mut stores = empty()?;
    let mut stats = BackendStats::default();
    append_log(&mut stores, log, &mut stats)?;
    Ok(stores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use raptor_audit::sim::Simulator;
    use raptor_audit::LogParser;
    use raptor_common::time::Timestamp;

    fn sample_log() -> ParsedLog {
        let mut sim = Simulator::new(5, Timestamp::from_secs(1000));
        let shell = sim.boot_process("/bin/bash", "root");
        let tar = sim.spawn(shell, "/bin/tar", "tar cf /tmp/upload.tar");
        sim.read_file(tar, "/etc/passwd", 4096, 4);
        sim.write_file(tar, "/tmp/upload.tar", 4096, 2);
        let curl = sim.spawn(shell, "/usr/bin/curl", "curl");
        let fd = sim.connect(curl, "192.168.29.128", 443);
        sim.send(curl, fd, 1024, 2);
        sim.exit(curl);
        sim.exit(tar);
        LogParser::parse(&sim.finish())
    }

    #[test]
    fn both_stores_consistent() {
        let log = sample_log();
        let stores = load(&log).unwrap();
        // Same number of entities as rows across entity tables.
        let n_rel: i64 = ["files", "processes", "netconns"]
            .iter()
            .map(|t| stores.rel.query_count(&format!("SELECT COUNT(*) FROM {t}")).unwrap())
            .sum();
        assert_eq!(n_rel as usize, log.entities.len());
        assert_eq!(stores.graph.node_count(), log.entities.len());
        assert_eq!(
            stores.rel.query_count("SELECT COUNT(*) FROM events").unwrap() as usize,
            log.events.len()
        );
        assert_eq!(stores.graph.edge_count(), log.events.len());
    }

    #[test]
    fn indexed_lookup_works_in_both() {
        let stores = load(&sample_log()).unwrap();
        let r =
            stores.rel.query("SELECT id FROM processes WHERE exename LIKE '%/bin/tar%'").unwrap();
        assert_eq!(r.n_rows(), 1);
        assert!(r.stats.index_scans >= 1);
        let sym = stores.graph.dict().get("/bin/tar").unwrap();
        let nodes = stores
            .graph
            .indexed_nodes(LABEL_PROCESS, "exename", raptor_graphstore::PropValue::Str(sym))
            .unwrap();
        assert_eq!(nodes.len(), 1);
        // Same entity id across stores.
        let rel_id = r.row(0)[0].as_int().unwrap();
        let g_id = stores.graph.node_prop(nodes[0], "id").unwrap();
        assert_eq!(g_id, raptor_graphstore::PropValue::Int(rel_id));
    }

    #[test]
    fn now_is_max_end_time() {
        let log = sample_log();
        let stores = load(&log).unwrap();
        let max_end = log.events.iter().map(|e| e.end.0).max().unwrap();
        assert_eq!(stores.now_ns, max_end);
    }
}
