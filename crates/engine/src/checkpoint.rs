//! Checkpoints: point-in-time serialization of everything a restart must
//! survive — the shared dictionary, the columnar segments and zone maps of
//! every table, the stream session's epoch/watermark position, and each
//! standing query's accumulated match state.
//!
//! ## Restore strategy: replay through the one write seam
//!
//! A checkpoint is *not* restored by poking bytes back into the backends.
//! Instead, [`decode`] rebuilds the store by replaying every serialized row
//! through the same [`crate::load::append_entity`] / [`append_event`] seam
//! that built it — in the original arrival order, which the checkpoint
//! records as per-epoch `(entities, events)` runs. That makes a recovered
//! store **identical by construction**: both backends, every index, every
//! zone map, and every statistics histogram are rebuilt by the exact code
//! path that produced them, so order-sensitive state (MCV tracking caps,
//! histogram extents, adjacency order) cannot drift. The serialized zone
//! maps are then used as an integrity cross-check of the rebuilt store
//! rather than as the restore source.
//!
//! The dictionary is restored *first*, pinning every interned
//! [`raptor_common::Sym`] to its pre-crash value — symbols embedded in
//! standing-query state stay valid, and all interning during replay is an
//! idempotent no-op.
//!
//! ## File layout
//!
//! ```text
//! [magic u32][version u32][crc32(body) u32][body]
//! body = dict · segment capacity · 4 tables (cells, null flags, zones)
//!        · session meta (epochs, now_ns, ingest stats, arrival runs)
//!        · standing queries (name, TBQL text, opaque state,
//!          v2: frontier state)
//!        · v2: path-catalog digest (flag, canonical length + crc32)
//! ```
//!
//! Version 2 appends each standing query's cached [`PathFrontier`] state
//! (so recovery resumes delta-incremental path matching without a cold
//! rebuild) and a digest of the path cardinality catalog. The catalog
//! itself is *never* serialized — replay through the load seam rebuilds it
//! by construction — the digest only cross-checks that the rebuilt catalogs
//! (both backends maintain one through the same `record_edge` seam) match
//! what the checkpointed process observed. Version-1 checkpoints still
//! restore cleanly: the catalog is rebuilt from the replayed rows and the
//! frontiers rebuild lazily on the first post-recovery epoch.
//!
//! Corrupt input — truncation, bit flips, implausible lengths — decodes to
//! a typed [`Error::storage`], never a panic.
//!
//! [`PathFrontier`]: raptor_graphstore::PathFrontier
//!
//! [`append_event`]: crate::load::append_event

use raptor_audit::syscall::Protocol;
use raptor_audit::{
    Entity, EntityAttrs, EntityKind, FileAttrs, NetConnAttrs, Operation, ProcessAttrs, SystemEvent,
};
use raptor_common::error::{Error, Result};
use raptor_common::ids::{EntityId, EventId};
use raptor_common::intern::SharedDict;
use raptor_common::io::{self, Cur};
use raptor_common::time::Timestamp;
use raptor_common::Sym;
use raptor_storage::BackendStats;
use raptor_tbql::{analyze::analyze, parse_tbql};

use crate::load::{self, LoadedStores};
use crate::standing::StandingQuery;

/// File name of the checkpoint inside a durability `Fs`.
pub const CKPT_FILE: &str = "ckpt";

const MAGIC: u32 = 0x5452_434B; // "KCRT" little-endian: reads as "TRCK" tag
const VERSION: u32 = 2;
/// Oldest version [`decode`] still accepts (restored with cold frontiers).
const MIN_VERSION: u32 = 1;

/// Fixed serialization order of the audit tables.
const TABLES: [&str; 4] = ["files", "processes", "netconns", "events"];

/// Stream-session position and provenance captured alongside the store.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SessionMeta {
    /// Epochs committed so far (the next epoch number).
    pub epochs: u64,
    /// The store's `now_ns` watermark (max event end time).
    pub now_ns: i64,
    /// Cumulative ingest-side backend stats across all epochs.
    pub total_ingest: BackendStats,
    /// Per-epoch arrival runs `(entities, events)`, in epoch order. Within
    /// an epoch, entities always precede events (the load seam's contract),
    /// so these pairs fully determine global arrival order.
    pub arrival: Vec<(u64, u64)>,
}

/// One registered standing query, borrowed for encoding.
pub struct StandingSnap<'a> {
    pub name: &'a str,
    /// The TBQL text as registered — recovery re-analyzes it rather than
    /// serializing the compiled query.
    pub text: &'a str,
    pub query: &'a StandingQuery,
}

/// Everything [`decode`] rebuilds from a checkpoint.
pub struct Restored {
    pub stores: LoadedStores,
    /// Recovered standing queries with their registered TBQL text, in
    /// registration order.
    pub queries: Vec<(String, String, StandingQuery)>,
    pub meta: SessionMeta,
    /// Entity + event rows replayed out of the snapshot.
    pub replayed_rows: u64,
}

// ---------------------------------------------------------------------------
// Encoding.
// ---------------------------------------------------------------------------

fn encode_stats(buf: &mut Vec<u8>, s: &BackendStats) {
    for v in [
        s.data_queries,
        s.text_parses,
        s.items_scanned,
        s.items_built,
        s.items_inserted,
        s.index_scans,
        s.full_scans,
        s.edges_traversed,
        s.segments_scanned,
        s.segments_pruned,
    ] {
        io::put_u64(buf, v as u64);
    }
}

fn decode_stats(cur: &mut Cur<'_>) -> Result<BackendStats> {
    let mut s = BackendStats::default();
    for field in [
        &mut s.data_queries,
        &mut s.text_parses,
        &mut s.items_scanned,
        &mut s.items_built,
        &mut s.items_inserted,
        &mut s.index_scans,
        &mut s.full_scans,
        &mut s.edges_traversed,
        &mut s.segments_scanned,
        &mut s.segments_pruned,
    ] {
        *field = cur.get_u64()? as usize;
    }
    Ok(s)
}

fn encode_table(buf: &mut Vec<u8>, t: &raptor_relstore::table::Table) {
    let rows = t.len();
    io::put_u64(buf, rows as u64);
    io::put_u64(buf, t.schema.arity() as u64);
    for col in 0..t.schema.arity() {
        if let Some(ints) = t.int_cells(col) {
            io::put_u8(buf, 0);
            for v in ints {
                io::put_i64(buf, *v);
            }
        } else {
            io::put_u8(buf, 1);
            for s in t.sym_cells(col).expect("column is int or sym") {
                io::put_u32(buf, s.0);
            }
        }
        for null in t.null_flags(col) {
            io::put_u8(buf, *null as u8);
        }
        io::put_u64(buf, t.n_segments() as u64);
        for seg in 0..t.n_segments() {
            let z = t.zone(col, seg);
            io::put_u64(buf, z.ints.count());
            io::put_i64(buf, z.ints.min().unwrap_or(0));
            io::put_i64(buf, z.ints.max().unwrap_or(0));
            io::put_u32(buf, z.nulls);
            io::put_u32(buf, z.rows);
        }
    }
}

/// Serializes a checkpoint of `stores` + `standing` + `meta`.
pub fn encode(
    stores: &LoadedStores,
    standing: &[StandingSnap<'_>],
    meta: &SessionMeta,
) -> Result<Vec<u8>> {
    encode_versioned(stores, standing, meta, VERSION)
}

/// Encodes at an older layout version. Exists so the recovery tests can
/// prove that checkpoints written by previous releases still restore; live
/// code always writes [`VERSION`].
#[doc(hidden)]
pub fn encode_versioned(
    stores: &LoadedStores,
    standing: &[StandingSnap<'_>],
    meta: &SessionMeta,
    version: u32,
) -> Result<Vec<u8>> {
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(Error::storage(format!("cannot encode checkpoint version {version}")));
    }
    let mut body = Vec::with_capacity(4096);
    // Dictionary, in insertion order: restoring it first pins every Sym.
    io::put_u64(&mut body, stores.dict.len() as u64);
    for (_, s) in stores.dict.iter() {
        io::put_str(&mut body, s);
    }
    let cap = stores
        .rel
        .table(TABLES[0])
        .ok_or_else(|| Error::storage("checkpoint: missing audit table"))?
        .segment_rows();
    io::put_u64(&mut body, cap as u64);
    for name in TABLES {
        let t = stores
            .rel
            .table(name)
            .ok_or_else(|| Error::storage(format!("checkpoint: missing table {name}")))?;
        encode_table(&mut body, t);
    }
    io::put_u64(&mut body, meta.epochs);
    io::put_i64(&mut body, meta.now_ns);
    encode_stats(&mut body, &meta.total_ingest);
    io::put_u64(&mut body, meta.arrival.len() as u64);
    for (ents, evs) in &meta.arrival {
        io::put_u64(&mut body, *ents);
        io::put_u64(&mut body, *evs);
    }
    io::put_u64(&mut body, standing.len() as u64);
    for snap in standing {
        io::put_str(&mut body, snap.name);
        io::put_str(&mut body, snap.text);
        let mut state = Vec::new();
        snap.query.encode_state(&mut state);
        io::put_u64(&mut body, state.len() as u64);
        body.extend_from_slice(&state);
        if version >= 2 {
            // The cached path-frontier state, its own length-prefixed blob.
            let mut frontier = Vec::new();
            snap.query.encode_frontier_state(&mut frontier);
            io::put_u64(&mut body, frontier.len() as u64);
            body.extend_from_slice(&frontier);
        }
    }
    if version >= 2 {
        // Path-catalog digest. Absent when the escape hatch disabled
        // maintenance in this process — a restore can then still rebuild
        // its own catalog from the replayed rows without a spurious
        // mismatch.
        if stores.graph.store_stats().catalog().enabled() {
            let canonical = stores.graph.store_stats().catalog().canonical(&stores.dict);
            let rendered = format!("{canonical:?}");
            io::put_u8(&mut body, 1);
            io::put_u64(&mut body, rendered.len() as u64);
            io::put_u32(&mut body, io::crc32(rendered.as_bytes()));
        } else {
            io::put_u8(&mut body, 0);
        }
    }

    let mut out = Vec::with_capacity(12 + body.len());
    io::put_u32(&mut out, MAGIC);
    io::put_u32(&mut out, version);
    io::put_u32(&mut out, io::crc32(&body));
    out.extend_from_slice(&body);
    Ok(out)
}

// ---------------------------------------------------------------------------
// Decoding + replay.
// ---------------------------------------------------------------------------

/// One decoded column: either int cells or dictionary symbols, plus nulls
/// and the serialized zone maps (used as a post-replay integrity check).
struct ColSnap {
    ints: Vec<i64>,
    syms: Vec<u32>,
    nulls: Vec<bool>,
    /// (non-null count, min, max, nulls, rows) per segment.
    zones: Vec<(u64, i64, i64, u32, u32)>,
}

struct TableSnap {
    rows: usize,
    cols: Vec<ColSnap>,
}

fn decode_table(cur: &mut Cur<'_>, arity: usize, n_syms: u32) -> Result<TableSnap> {
    let rows = cur.get_len()?;
    let got_arity = cur.get_len()?;
    if got_arity != arity {
        return Err(Error::storage(format!(
            "checkpoint table arity {got_arity} != schema arity {arity}"
        )));
    }
    let mut cols = Vec::with_capacity(arity);
    for _ in 0..arity {
        let kind = cur.get_u8()?;
        let mut ints = Vec::new();
        let mut syms = Vec::new();
        match kind {
            0 => {
                ints.reserve(rows);
                for _ in 0..rows {
                    ints.push(cur.get_i64()?);
                }
            }
            1 => {
                syms.reserve(rows);
                for _ in 0..rows {
                    let s = cur.get_u32()?;
                    if s >= n_syms {
                        return Err(Error::storage(format!(
                            "checkpoint symbol {s} out of dictionary range {n_syms}"
                        )));
                    }
                    syms.push(s);
                }
            }
            other => {
                return Err(Error::storage(format!("invalid column kind tag {other}")));
            }
        }
        let mut nulls = Vec::with_capacity(rows);
        for _ in 0..rows {
            nulls.push(match cur.get_u8()? {
                0 => false,
                1 => true,
                other => {
                    return Err(Error::storage(format!("invalid null flag {other}")));
                }
            });
        }
        let n_segs = cur.get_len()?;
        let mut zones = Vec::with_capacity(n_segs);
        for _ in 0..n_segs {
            zones.push((
                cur.get_u64()?,
                cur.get_i64()?,
                cur.get_i64()?,
                cur.get_u32()?,
                cur.get_u32()?,
            ));
        }
        cols.push(ColSnap { ints, syms, nulls, zones });
    }
    Ok(TableSnap { rows, cols })
}

fn cell_int(snap: &TableSnap, table: &str, row: usize, col: usize) -> Result<i64> {
    let c = &snap.cols[col];
    if c.nulls.get(row).copied().unwrap_or(true) {
        return Err(Error::storage(format!(
            "checkpoint: unexpected NULL at {table}[{row}][{col}]"
        )));
    }
    c.ints
        .get(row)
        .copied()
        .ok_or_else(|| Error::storage(format!("checkpoint: {table}[{row}][{col}] not an int cell")))
}

fn cell_str(
    snap: &TableSnap,
    dict: &SharedDict,
    table: &str,
    row: usize,
    col: usize,
) -> Result<String> {
    let c = &snap.cols[col];
    if c.nulls.get(row).copied().unwrap_or(true) {
        return Err(Error::storage(format!(
            "checkpoint: unexpected NULL at {table}[{row}][{col}]"
        )));
    }
    let s = c.syms.get(row).copied().ok_or_else(|| {
        Error::storage(format!("checkpoint: {table}[{row}][{col}] not a string cell"))
    })?;
    Ok(dict.resolve(Sym(s)).to_string())
}

fn narrow<T: TryFrom<i64>>(v: i64, what: &str) -> Result<T> {
    T::try_from(v).map_err(|_| Error::storage(format!("checkpoint: {what} {v} out of range")))
}

/// Rebuilds one entity from its snapshot row.
fn entity_at(
    snaps: &[TableSnap],
    dict: &SharedDict,
    kind: EntityKind,
    row: usize,
    id: i64,
) -> Result<Entity> {
    let (ti, table) = match kind {
        EntityKind::File => (0usize, "files"),
        EntityKind::Process => (1, "processes"),
        EntityKind::NetConn => (2, "netconns"),
    };
    let snap = &snaps[ti];
    let attrs = match kind {
        EntityKind::File => EntityAttrs::File(FileAttrs {
            name: cell_str(snap, dict, table, row, 1)?,
            path: cell_str(snap, dict, table, row, 2)?,
            user: cell_str(snap, dict, table, row, 3)?,
            group: cell_str(snap, dict, table, row, 4)?,
        }),
        EntityKind::Process => EntityAttrs::Process(ProcessAttrs {
            pid: narrow(cell_int(snap, table, row, 1)?, "pid")?,
            exename: cell_str(snap, dict, table, row, 2)?,
            user: cell_str(snap, dict, table, row, 3)?,
            group: cell_str(snap, dict, table, row, 4)?,
            cmd: cell_str(snap, dict, table, row, 5)?,
        }),
        EntityKind::NetConn => EntityAttrs::NetConn(NetConnAttrs {
            src_ip: cell_str(snap, dict, table, row, 1)?,
            src_port: narrow(cell_int(snap, table, row, 2)?, "srcport")?,
            dst_ip: cell_str(snap, dict, table, row, 3)?,
            dst_port: narrow(cell_int(snap, table, row, 4)?, "dstport")?,
            protocol: match cell_str(snap, dict, table, row, 5)?.as_str() {
                "tcp" => Protocol::Tcp,
                "udp" => Protocol::Udp,
                other => {
                    return Err(Error::storage(format!("checkpoint: unknown protocol `{other}`")));
                }
            },
        }),
    };
    let host_col = match kind {
        EntityKind::File => 5,
        EntityKind::Process | EntityKind::NetConn => 6,
    };
    Ok(Entity {
        id: EntityId(narrow::<u32>(id, "entity id")?),
        host: narrow(cell_int(snap, table, row, host_col)?, "host")?,
        attrs,
    })
}

/// Rebuilds one event from the events snapshot row.
fn event_at(snap: &TableSnap, dict: &SharedDict, row: usize) -> Result<SystemEvent> {
    let t = "events";
    let op_name = cell_str(snap, dict, t, row, 3)?;
    let op = Operation::from_name(&op_name)
        .ok_or_else(|| Error::storage(format!("checkpoint: unknown operation `{op_name}`")))?;
    let kind = match cell_str(snap, dict, t, row, 4)?.as_str() {
        "file" => raptor_audit::EventKind::File,
        "process" => raptor_audit::EventKind::Process,
        "network" => raptor_audit::EventKind::Network,
        other => {
            return Err(Error::storage(format!("checkpoint: unknown event kind `{other}`")));
        }
    };
    let start = cell_int(snap, t, row, 5)?;
    let end = cell_int(snap, t, row, 6)?;
    let duration = cell_int(snap, t, row, 7)?;
    if end - start != duration {
        return Err(Error::storage("checkpoint: event duration inconsistent with start/end"));
    }
    Ok(SystemEvent {
        id: EventId(narrow::<u32>(cell_int(snap, t, row, 0)?, "event id")?),
        subject: EntityId(narrow::<u32>(cell_int(snap, t, row, 1)?, "subject id")?),
        object: EntityId(narrow::<u32>(cell_int(snap, t, row, 2)?, "object id")?),
        op,
        kind,
        start: Timestamp(start),
        end: Timestamp(end),
        amount: narrow(cell_int(snap, t, row, 8)?, "amount")?,
        fail_code: narrow(cell_int(snap, t, row, 9)?, "failcode")?,
        host: narrow(cell_int(snap, t, row, 10)?, "host")?,
    })
}

/// Cross-checks the rebuilt table's zone maps against the serialized ones.
/// Any divergence means the replay did not reproduce the checkpointed store
/// — corrupt input or a logic drift — and recovery must not proceed.
fn check_zones(t: &raptor_relstore::table::Table, snap: &TableSnap, name: &str) -> Result<()> {
    if t.len() != snap.rows {
        return Err(Error::storage(format!(
            "checkpoint integrity: {name} rebuilt {} rows, snapshot has {}",
            t.len(),
            snap.rows
        )));
    }
    for (col, cs) in snap.cols.iter().enumerate() {
        if t.n_segments() != cs.zones.len() {
            return Err(Error::storage(format!(
                "checkpoint integrity: {name}.{col} segment count mismatch"
            )));
        }
        for (seg, &(count, min, max, nulls, rows)) in cs.zones.iter().enumerate() {
            let z = t.zone(col, seg);
            let same = z.ints.count() == count
                && z.ints.min().unwrap_or(0) == min
                && z.ints.max().unwrap_or(0) == max
                && z.nulls == nulls
                && z.rows == rows;
            if !same {
                return Err(Error::storage(format!(
                    "checkpoint integrity: {name}.{col} zone {seg} diverged after replay"
                )));
            }
        }
    }
    Ok(())
}

/// Decodes a checkpoint and rebuilds the full session state (see module
/// docs for the replay strategy).
pub fn decode(bytes: &[u8]) -> Result<Restored> {
    let mut cur = Cur::new(bytes);
    if cur.get_u32()? != MAGIC {
        return Err(Error::storage("not a ThreatRaptor checkpoint (bad magic)"));
    }
    let version = cur.get_u32()?;
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(Error::storage(format!("unsupported checkpoint version {version}")));
    }
    let crc = cur.get_u32()?;
    let body = &bytes[cur.pos()..];
    if io::crc32(body) != crc {
        return Err(Error::storage("checkpoint checksum mismatch (corrupt file)"));
    }

    // 1. Dictionary first: pins every Sym to its pre-crash value.
    let n_syms = cur.get_len()?;
    let dict = SharedDict::new();
    for i in 0..n_syms {
        let s = cur.get_str()?;
        let sym = dict.intern(&s);
        if sym.index() != i {
            return Err(Error::storage("checkpoint dictionary has duplicate strings"));
        }
    }
    let cap = cur.get_len()?;
    if cap == 0 {
        return Err(Error::storage("checkpoint: zero segment capacity"));
    }

    // 2. Fresh stores around the restored dictionary, at the recorded
    //    segment capacity.
    let mut stores = load::empty_with_dict(dict.clone())?;
    stores.rel.set_segment_rows(cap);

    // 3. Decode the four table snapshots.
    let mut snaps = Vec::with_capacity(TABLES.len());
    for name in TABLES {
        let arity = stores
            .rel
            .table(name)
            .ok_or_else(|| Error::storage(format!("missing table {name}")))?
            .schema
            .arity();
        snaps.push(decode_table(&mut cur, arity, n_syms as u32)?);
    }

    // 4. Session meta.
    let mut meta = SessionMeta {
        epochs: cur.get_u64()?,
        now_ns: cur.get_i64()?,
        total_ingest: decode_stats(&mut cur)?,
        arrival: Vec::new(),
    };
    let n_runs = cur.get_len()?;
    for _ in 0..n_runs {
        let ents = cur.get_u64()?;
        let evs = cur.get_u64()?;
        meta.arrival.push((ents, evs));
    }

    // 5. Replay every row through the load seam, in recorded arrival order.
    //    Entity ids are dense and ascending, so the id → (kind, row) map
    //    drives the interleave.
    let mut by_id: Vec<Option<(EntityKind, usize)>> = Vec::new();
    let total_entities: usize = snaps[..3].iter().map(|s| s.rows).sum();
    by_id.resize(total_entities, None);
    for (ti, kind) in
        [(0usize, EntityKind::File), (1, EntityKind::Process), (2, EntityKind::NetConn)]
    {
        for row in 0..snaps[ti].rows {
            let id = cell_int(&snaps[ti], TABLES[ti], row, 0)?;
            let slot =
                by_id
                    .get_mut(usize::try_from(id).map_err(|_| {
                        Error::storage(format!("checkpoint: negative entity id {id}"))
                    })?)
                    .ok_or_else(|| {
                        Error::storage(format!("checkpoint: entity id {id} out of dense range"))
                    })?;
            if slot.replace((kind, row)).is_some() {
                return Err(Error::storage(format!("checkpoint: duplicate entity id {id}")));
            }
        }
    }
    let run_total: (u64, u64) =
        meta.arrival.iter().fold((0, 0), |(e, v), (re, rv)| (e + re, v + rv));
    if run_total.0 != total_entities as u64 || run_total.1 != snaps[3].rows as u64 {
        return Err(Error::storage(format!(
            "checkpoint: arrival runs cover {}/{} rows, tables hold {}/{}",
            run_total.0, run_total.1, total_entities, snaps[3].rows
        )));
    }

    let mut stats = BackendStats::default();
    let mut next_entity = 0usize;
    let mut next_event = 0usize;
    for &(run_ents, run_evs) in &meta.arrival {
        for _ in 0..run_ents {
            let (kind, row) = by_id[next_entity].ok_or_else(|| {
                Error::storage(format!("checkpoint: missing entity id {next_entity}"))
            })?;
            let e = entity_at(&snaps, &dict, kind, row, next_entity as i64)?;
            load::append_entity(&mut stores, &e, &mut stats)?;
            next_entity += 1;
        }
        for _ in 0..run_evs {
            let ev = event_at(&snaps[3], &dict, next_event)?;
            if ev.subject.index() >= next_entity || ev.object.index() >= next_entity {
                return Err(Error::storage(format!(
                    "checkpoint: event {next_event} references a not-yet-arrived entity"
                )));
            }
            load::append_event(&mut stores, &ev, &mut stats)?;
            next_event += 1;
        }
    }

    // 6. Integrity: the rebuilt zone maps must match the serialized ones.
    for (ti, name) in TABLES.iter().enumerate() {
        let t = stores.rel.table(name).ok_or_else(|| Error::storage("missing table"))?;
        check_zones(t, &snaps[ti], name)?;
    }
    if stores.now_ns > meta.now_ns {
        return Err(Error::storage("checkpoint: now_ns behind replayed events"));
    }
    stores.now_ns = meta.now_ns;

    // 7. Standing queries: re-analyze the registered text, restore state.
    let n_standing = cur.get_len()?;
    let mut queries = Vec::with_capacity(n_standing);
    for _ in 0..n_standing {
        let name = cur.get_str()?;
        let text = cur.get_str()?;
        let state_len = cur.get_len()?;
        let state = cur.get_bytes(state_len)?;
        let parsed = parse_tbql(&text)
            .map_err(|e| Error::storage(format!("checkpoint: bad standing TBQL: {e}")))?;
        let aq = analyze(&parsed)
            .map_err(|e| Error::storage(format!("checkpoint: bad standing query: {e}")))?;
        let mut q = StandingQuery::new(name.clone(), aq, dict.clone())?;
        q.decode_state(&mut Cur::new(state))?;
        if version >= 2 {
            let frontier_len = cur.get_len()?;
            let frontier = cur.get_bytes(frontier_len)?;
            q.decode_frontier_state(&mut Cur::new(frontier))?;
        }
        queries.push((name, text, q));
    }

    // 8. v2: cross-check the rebuilt path catalogs against the digest the
    //    checkpointed process recorded. Skipped when either side ran with
    //    the catalog disabled — an escape-hatch restart must not be wedged
    //    by a checkpoint from an enabled run, or vice versa.
    if version >= 2 {
        match cur.get_u8()? {
            0 => {}
            1 => {
                let len = cur.get_u64()?;
                let crc = cur.get_u32()?;
                for (backend, s) in [
                    ("graph", stores.graph.store_stats()),
                    ("relational", stores.rel.store_stats()),
                ] {
                    if !s.catalog().enabled() {
                        continue;
                    }
                    let rendered = format!("{:?}", s.catalog().canonical(&dict));
                    if rendered.len() as u64 != len || io::crc32(rendered.as_bytes()) != crc {
                        return Err(Error::storage(format!(
                            "checkpoint integrity: {backend} path catalog diverged after replay"
                        )));
                    }
                }
            }
            other => {
                return Err(Error::storage(format!("invalid catalog digest tag {other}")));
            }
        }
    }
    if !cur.is_done() {
        return Err(Error::storage(format!(
            "checkpoint: {} trailing bytes after decode",
            cur.remaining()
        )));
    }

    let replayed_rows = (next_entity + next_event) as u64;
    Ok(Restored { stores, queries, meta, replayed_rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use raptor_audit::sim::Simulator;
    use raptor_audit::LogParser;

    fn sample_log() -> raptor_audit::ParsedLog {
        let mut sim = Simulator::new(5, Timestamp::from_secs(1000));
        let shell = sim.boot_process("/bin/bash", "root");
        let tar = sim.spawn(shell, "/bin/tar", "tar cf /tmp/upload.tar");
        sim.read_file(tar, "/etc/passwd", 4096, 4);
        sim.write_file(tar, "/tmp/upload.tar", 4096, 2);
        let curl = sim.spawn(shell, "/usr/bin/curl", "curl");
        let fd = sim.connect(curl, "192.168.29.128", 443);
        sim.send(curl, fd, 1024, 2);
        sim.exit(curl);
        sim.exit(tar);
        LogParser::parse(&sim.finish())
    }

    fn meta_for(log: &raptor_audit::ParsedLog, now_ns: i64) -> SessionMeta {
        SessionMeta {
            epochs: 1,
            now_ns,
            total_ingest: BackendStats::default(),
            arrival: vec![(log.entities.len() as u64, log.events.len() as u64)],
        }
    }

    #[test]
    fn roundtrip_rebuilds_identical_store() {
        let log = sample_log();
        let stores = load::load(&log).unwrap();
        let meta = meta_for(&log, stores.now_ns);
        let bytes = encode(&stores, &[], &meta).unwrap();
        let restored = decode(&bytes).unwrap();
        assert_eq!(restored.meta, meta);
        assert_eq!(restored.replayed_rows as usize, log.entities.len() + log.events.len());
        // Same stats (covers dict, histograms, degree maps), same rows.
        assert_eq!(restored.stores.rel.store_stats(), stores.rel.store_stats());
        assert_eq!(restored.stores.graph.node_count(), stores.graph.node_count());
        assert_eq!(restored.stores.graph.edge_count(), stores.graph.edge_count());
        assert_eq!(restored.stores.now_ns, stores.now_ns);
        assert_eq!(restored.stores.dict.len(), stores.dict.len());
        // Dictionary is pinned string-for-string.
        for (sym, s) in stores.dict.iter() {
            assert_eq!(restored.stores.dict.resolve(sym), s);
        }
    }

    /// Version-1 images (no frontier state, no catalog digest) still
    /// restore: the catalog is rebuilt from the replayed rows and the
    /// standing query's frontier rebuilds lazily on its next advance.
    #[test]
    fn v1_checkpoints_still_restore() {
        use raptor_tbql::{analyze::analyze, parse_tbql};
        let log = sample_log();
        let stores = load::load(&log).unwrap();
        let meta = meta_for(&log, stores.now_ns);
        let text = "proc p read file f as e1 return p, f";
        let q = StandingQuery::new(
            "hunt",
            analyze(&parse_tbql(text).unwrap()).unwrap(),
            stores.dict.clone(),
        )
        .unwrap();
        let snaps = [StandingSnap { name: "hunt", text, query: &q }];
        let bytes = encode_versioned(&stores, &snaps, &meta, 1).unwrap();
        let restored = decode(&bytes).unwrap();
        assert_eq!(restored.queries.len(), 1);
        assert_eq!(restored.stores.graph.edge_count(), stores.graph.edge_count());
        // The rebuilt catalog matches the live store's — replay went
        // through the same write seam.
        assert_eq!(
            restored.stores.graph.store_stats().catalog().canonical(&restored.stores.dict),
            stores.graph.store_stats().catalog().canonical(&stores.dict),
        );
        // A version we have never shipped is refused, both ways.
        assert!(encode_versioned(&stores, &[], &meta, 3).is_err());
        let mut future = encode(&stores, &[], &meta).unwrap();
        future[4..8].copy_from_slice(&3u32.to_le_bytes());
        assert!(decode(&future).is_err());
    }

    /// The current version round-trips standing state *and* the catalog
    /// digest: replay must reproduce the exact catalog or decode refuses.
    #[test]
    fn v2_roundtrip_checks_catalog_digest() {
        let log = sample_log();
        let stores = load::load(&log).unwrap();
        let meta = meta_for(&log, stores.now_ns);
        let bytes = encode(&stores, &[], &meta).unwrap();
        let restored = decode(&bytes).unwrap();
        assert_eq!(
            restored.stores.rel.store_stats().catalog().canonical(&restored.stores.dict),
            stores.graph.store_stats().catalog().canonical(&stores.dict),
            "both rebuilt catalogs must match the encoded digest's source"
        );
    }

    #[test]
    fn corrupt_checkpoints_error_cleanly() {
        let log = sample_log();
        let stores = load::load(&log).unwrap();
        let meta = meta_for(&log, stores.now_ns);
        let clean = encode(&stores, &[], &meta).unwrap();
        // Zero-length and truncated-at-every-boundary inputs.
        assert!(decode(&[]).is_err());
        for cut in [1, 4, 11, 12, clean.len() / 2, clean.len() - 1] {
            assert!(decode(&clean[..cut]).is_err(), "cut at {cut} must error");
        }
        // Bit flips anywhere must be caught (header checks or crc).
        for i in (0..clean.len()).step_by(7) {
            let mut corrupt = clean.clone();
            corrupt[i] ^= 0x10;
            assert!(decode(&corrupt).is_err(), "flip at {i} must error");
        }
    }
}
