//! System auditing substrate.
//!
//! ThreatRaptor (ICDE'21) is built on kernel auditing frameworks (Sysdig,
//! Linux Audit, ETW) that record system calls and on a parser that lifts the
//! raw call stream into *system entities* (files, processes, network
//! connections) and *system events* ⟨subject, operation, object⟩. This crate
//! reproduces that substrate end to end:
//!
//! * [`syscall`] — the raw record model covering the Table I calls,
//! * [`entity`] / [`event`] — the parsed data model with the Table II / III
//!   attributes and the paper's entity-identity rules,
//! * [`codec`] — a compact binary codec plus a sysdig-like text form for raw
//!   records,
//! * [`parser`] — the stateful log parser (process table + per-process fd
//!   tables) that produces a [`parser::ParsedLog`],
//! * [`reduce`] — the CCS'16-style data-reduction pass that merges excessive
//!   events between the same entity pair (Section III-B),
//! * [`sim`] — a deterministic workload simulator standing in for the live
//!   testbed: benign background activity plus scripted attack behaviours
//!   (substitution documented in `DESIGN.md` §1).

pub mod codec;
pub mod entity;
pub mod event;
pub mod parser;
pub mod reduce;
pub mod sim;
pub mod syscall;

pub use entity::{Entity, EntityAttrs, EntityKind, FileAttrs, NetConnAttrs, ProcessAttrs};
pub use event::{EventKind, Operation, SystemEvent};
pub use parser::{LogParser, ParsedLog};
pub use reduce::{merge_events, ReductionStats};
pub use syscall::{Syscall, SyscallArgs, SyscallRecord};
