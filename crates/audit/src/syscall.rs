//! Raw system-call records.
//!
//! This is the wire-level model: what a kernel auditing framework (Sysdig /
//! Linux Audit / ETW) would deliver. Table I of the paper lists the calls the
//! system processes per event category:
//!
//! | Event category     | Relevant system calls                                   |
//! |--------------------|---------------------------------------------------------|
//! | ProcessToFile      | read, readv, write, writev, execve, rename             |
//! | ProcessToProcess   | execve, fork, clone                                     |
//! | ProcessToNetwork   | read, readv, recvfrom, recvmsg, sendto, write, writev   |
//!
//! We additionally model the bookkeeping calls (`open`, `close`, `socket`,
//! `connect`, `exit`) that the parser needs to maintain file-descriptor
//! tables, exactly as a real auditing pipeline does.

use raptor_common::time::{Duration, Timestamp};

/// A monitored system call.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum Syscall {
    Open,
    Close,
    Read,
    Readv,
    Write,
    Writev,
    Execve,
    Fork,
    Clone,
    Rename,
    Socket,
    Connect,
    Sendto,
    Sendmsg,
    Recvfrom,
    Recvmsg,
    Exit,
}

/// The three event categories of Table I.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EventCategory {
    ProcessToFile,
    ProcessToProcess,
    ProcessToNetwork,
}

impl Syscall {
    /// Stable name (matches the text log format).
    pub fn name(self) -> &'static str {
        match self {
            Syscall::Open => "open",
            Syscall::Close => "close",
            Syscall::Read => "read",
            Syscall::Readv => "readv",
            Syscall::Write => "write",
            Syscall::Writev => "writev",
            Syscall::Execve => "execve",
            Syscall::Fork => "fork",
            Syscall::Clone => "clone",
            Syscall::Rename => "rename",
            Syscall::Socket => "socket",
            Syscall::Connect => "connect",
            Syscall::Sendto => "sendto",
            Syscall::Sendmsg => "sendmsg",
            Syscall::Recvfrom => "recvfrom",
            Syscall::Recvmsg => "recvmsg",
            Syscall::Exit => "exit",
        }
    }

    pub fn from_name(name: &str) -> Option<Syscall> {
        Some(match name {
            "open" => Syscall::Open,
            "close" => Syscall::Close,
            "read" => Syscall::Read,
            "readv" => Syscall::Readv,
            "write" => Syscall::Write,
            "writev" => Syscall::Writev,
            "execve" => Syscall::Execve,
            "fork" => Syscall::Fork,
            "clone" => Syscall::Clone,
            "rename" => Syscall::Rename,
            "socket" => Syscall::Socket,
            "connect" => Syscall::Connect,
            "sendto" => Syscall::Sendto,
            "sendmsg" => Syscall::Sendmsg,
            "recvfrom" => Syscall::Recvfrom,
            "recvmsg" => Syscall::Recvmsg,
            "exit" => Syscall::Exit,
            _ => return None,
        })
    }

    /// All calls, in codec tag order.
    pub const ALL: [Syscall; 17] = [
        Syscall::Open,
        Syscall::Close,
        Syscall::Read,
        Syscall::Readv,
        Syscall::Write,
        Syscall::Writev,
        Syscall::Execve,
        Syscall::Fork,
        Syscall::Clone,
        Syscall::Rename,
        Syscall::Socket,
        Syscall::Connect,
        Syscall::Sendto,
        Syscall::Sendmsg,
        Syscall::Recvfrom,
        Syscall::Recvmsg,
        Syscall::Exit,
    ];

    /// Which event categories this call can produce (Table I). `read`/`write`
    /// appear in both file and network rows: the category depends on what the
    /// file descriptor refers to, which only the parser knows.
    pub fn categories(self) -> &'static [EventCategory] {
        use EventCategory::*;
        match self {
            Syscall::Read | Syscall::Readv | Syscall::Write | Syscall::Writev => {
                &[ProcessToFile, ProcessToNetwork]
            }
            Syscall::Execve => &[ProcessToFile, ProcessToProcess],
            Syscall::Rename => &[ProcessToFile],
            Syscall::Fork | Syscall::Clone | Syscall::Exit => &[ProcessToProcess],
            Syscall::Sendto
            | Syscall::Sendmsg
            | Syscall::Recvfrom
            | Syscall::Recvmsg
            | Syscall::Connect => &[ProcessToNetwork],
            Syscall::Open | Syscall::Close | Syscall::Socket => &[],
        }
    }
}

/// Call-specific arguments.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SyscallArgs {
    /// `open(path) = fd`
    Open { path: String, fd: i32 },
    /// `close(fd)`
    Close { fd: i32 },
    /// `read/readv/write/writev/sendto/sendmsg/recvfrom/recvmsg(fd)`;
    /// the byte count is the return value.
    Io { fd: i32 },
    /// `execve(path, cmdline)` — the process image is replaced.
    Exec { path: String, cmdline: String },
    /// `fork/clone() = child_pid`, recorded with the child executable the
    /// auditing layer observes post-fork.
    Spawn { child_pid: u32, child_exe: String },
    /// `rename(old, new)`
    Rename { old: String, new: String },
    /// `socket() = fd`
    Socket { fd: i32, protocol: Protocol },
    /// `connect(fd, dst)` — the auditing layer records the full 5-tuple.
    Connect { fd: i32, src_ip: String, src_port: u16, dst_ip: String, dst_port: u16 },
    /// `exit()`
    Exit,
}

/// Transport protocol of a socket.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Protocol {
    Tcp,
    Udp,
}

impl Protocol {
    pub fn name(self) -> &'static str {
        match self {
            Protocol::Tcp => "tcp",
            Protocol::Udp => "udp",
        }
    }
}

/// One raw audit record, as collected from the kernel.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SyscallRecord {
    /// Event start time.
    pub ts: Timestamp,
    /// Call latency; the event's end time is `ts + latency`.
    pub latency: Duration,
    /// Monitored host (index into the deployment's host list).
    pub host: u16,
    /// Calling process id.
    pub pid: u32,
    /// Executable name of the calling process, as the kernel reports it.
    pub exe: String,
    /// User that owns the process.
    pub user: String,
    /// Group that owns the process.
    pub group: String,
    /// The call itself.
    pub call: Syscall,
    /// Call arguments.
    pub args: SyscallArgs,
    /// Return value (byte count for I/O calls, 0/-errno otherwise).
    pub ret: i64,
}

impl SyscallRecord {
    /// End time of the call.
    pub fn end(&self) -> Timestamp {
        self.ts.plus(self.latency)
    }

    /// Whether the call failed (negative return value).
    pub fn failed(&self) -> bool {
        self.ret < 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_roundtrip() {
        for call in Syscall::ALL {
            assert_eq!(Syscall::from_name(call.name()), Some(call));
        }
        assert_eq!(Syscall::from_name("ptrace"), None);
    }

    #[test]
    fn table1_categories() {
        use EventCategory::*;
        // ProcessToFile row of Table I.
        for c in [
            Syscall::Read,
            Syscall::Readv,
            Syscall::Write,
            Syscall::Writev,
            Syscall::Execve,
            Syscall::Rename,
        ] {
            assert!(c.categories().contains(&ProcessToFile), "{c:?}");
        }
        // ProcessToProcess row.
        for c in [Syscall::Execve, Syscall::Fork, Syscall::Clone] {
            assert!(c.categories().contains(&ProcessToProcess), "{c:?}");
        }
        // ProcessToNetwork row.
        for c in [
            Syscall::Read,
            Syscall::Readv,
            Syscall::Recvfrom,
            Syscall::Recvmsg,
            Syscall::Sendto,
            Syscall::Write,
            Syscall::Writev,
        ] {
            assert!(c.categories().contains(&ProcessToNetwork), "{c:?}");
        }
        // Bookkeeping calls map to no event category directly.
        assert!(Syscall::Open.categories().is_empty());
        assert!(Syscall::Close.categories().is_empty());
        assert!(Syscall::Socket.categories().is_empty());
    }

    #[test]
    fn record_end_and_failure() {
        let r = SyscallRecord {
            ts: Timestamp::from_secs(10),
            latency: Duration::from_millis(3),
            host: 0,
            pid: 42,
            exe: "/bin/tar".into(),
            user: "root".into(),
            group: "root".into(),
            call: Syscall::Read,
            args: SyscallArgs::Io { fd: 3 },
            ret: 4096,
        };
        assert_eq!(r.end(), Timestamp(10 * 1_000_000_000 + 3_000_000));
        assert!(!r.failed());
        let mut f = r.clone();
        f.ret = -13;
        assert!(f.failed());
    }
}
