//! System entities and their attributes (Table II).
//!
//! | Entity             | Attributes                                   |
//! |--------------------|----------------------------------------------|
//! | File               | Name, Path, User, Group                      |
//! | Process            | PID, Executable Name, User, Group, CMD       |
//! | Network Connection | SRC/DST IP, SRC/DST Port, Protocol           |
//!
//! Entity identity follows Section III-A of the paper: a process is uniquely
//! identified by its executable name and PID, a file by its absolute path,
//! and a network connection by the 5-tuple
//! ⟨srcip, srcport, dstip, dstport, protocol⟩. "Failing to distinguish
//! different entities will cause problems in relating events to entities."

use raptor_common::ids::EntityId;

use crate::syscall::Protocol;

/// The three entity kinds ThreatRaptor monitors.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EntityKind {
    File,
    Process,
    NetConn,
}

impl EntityKind {
    /// TBQL entity-type keyword (`file` / `proc` / `ip`).
    pub fn tbql_keyword(self) -> &'static str {
        match self {
            EntityKind::File => "file",
            EntityKind::Process => "proc",
            EntityKind::NetConn => "ip",
        }
    }

    /// The default attribute used by TBQL syntactic sugar: `name` for files,
    /// `exename` for processes, `dstip` for network connections.
    pub fn default_attribute(self) -> &'static str {
        match self {
            EntityKind::File => "name",
            EntityKind::Process => "exename",
            EntityKind::NetConn => "dstip",
        }
    }
}

/// File attributes. `name` is the absolute path (the unique identifier);
/// `path` is the parent directory.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FileAttrs {
    pub name: String,
    pub path: String,
    pub user: String,
    pub group: String,
}

/// Process attributes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ProcessAttrs {
    pub pid: u32,
    pub exename: String,
    pub user: String,
    pub group: String,
    pub cmd: String,
}

/// Network connection attributes (the 5-tuple).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NetConnAttrs {
    pub src_ip: String,
    pub src_port: u16,
    pub dst_ip: String,
    pub dst_port: u16,
    pub protocol: Protocol,
}

/// Kind-specific attributes of an entity.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EntityAttrs {
    File(FileAttrs),
    Process(ProcessAttrs),
    NetConn(NetConnAttrs),
}

impl EntityAttrs {
    pub fn kind(&self) -> EntityKind {
        match self {
            EntityAttrs::File(_) => EntityKind::File,
            EntityAttrs::Process(_) => EntityKind::Process,
            EntityAttrs::NetConn(_) => EntityKind::NetConn,
        }
    }

    /// The paper's unique-identifier string for this entity.
    pub fn identity_key(&self, host: u16) -> String {
        match self {
            EntityAttrs::File(f) => format!("F|{host}|{}", f.name),
            EntityAttrs::Process(p) => format!("P|{host}|{}|{}", p.exename, p.pid),
            EntityAttrs::NetConn(n) => format!(
                "N|{host}|{}|{}|{}|{}|{}",
                n.src_ip,
                n.src_port,
                n.dst_ip,
                n.dst_port,
                n.protocol.name()
            ),
        }
    }

    /// The value of the kind's default attribute (used by result rendering).
    pub fn default_attribute_value(&self) -> String {
        match self {
            EntityAttrs::File(f) => f.name.clone(),
            EntityAttrs::Process(p) => p.exename.clone(),
            EntityAttrs::NetConn(n) => n.dst_ip.clone(),
        }
    }

    /// Generic attribute access by name; `None` for unknown attributes.
    /// Numeric attributes are rendered in decimal.
    pub fn get(&self, attr: &str) -> Option<String> {
        match self {
            EntityAttrs::File(f) => match attr {
                "name" => Some(f.name.clone()),
                "path" => Some(f.path.clone()),
                "user" => Some(f.user.clone()),
                "group" => Some(f.group.clone()),
                _ => None,
            },
            EntityAttrs::Process(p) => match attr {
                "pid" => Some(p.pid.to_string()),
                "exename" => Some(p.exename.clone()),
                "user" => Some(p.user.clone()),
                "group" => Some(p.group.clone()),
                "cmd" => Some(p.cmd.clone()),
                _ => None,
            },
            EntityAttrs::NetConn(n) => match attr {
                "srcip" => Some(n.src_ip.clone()),
                "srcport" => Some(n.src_port.to_string()),
                "dstip" => Some(n.dst_ip.clone()),
                "dstport" => Some(n.dst_port.to_string()),
                "protocol" => Some(n.protocol.name().to_string()),
                _ => None,
            },
        }
    }
}

/// A parsed system entity.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Entity {
    pub id: EntityId,
    /// Monitored host on which the entity was observed.
    pub host: u16,
    pub attrs: EntityAttrs,
}

impl Entity {
    pub fn kind(&self) -> EntityKind {
        self.attrs.kind()
    }
}

/// Splits an absolute path into its parent directory (for the `path`
/// attribute of Table II). Returns `/` for top-level files.
pub fn parent_dir(abs_path: &str) -> String {
    match abs_path.rfind('/') {
        Some(0) => "/".to_string(),
        Some(i) => abs_path[..i].to_string(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(name: &str) -> EntityAttrs {
        EntityAttrs::File(FileAttrs {
            name: name.into(),
            path: parent_dir(name),
            user: "root".into(),
            group: "root".into(),
        })
    }

    #[test]
    fn identity_keys_distinguish_entities() {
        let tar1 = EntityAttrs::Process(ProcessAttrs {
            pid: 100,
            exename: "/bin/tar".into(),
            user: "root".into(),
            group: "root".into(),
            cmd: "tar cf x".into(),
        });
        let tar2 = EntityAttrs::Process(ProcessAttrs {
            pid: 101,
            exename: "/bin/tar".into(),
            user: "root".into(),
            group: "root".into(),
            cmd: "tar cf y".into(),
        });
        // Same exe, different PID ⇒ different process entities.
        assert_ne!(tar1.identity_key(0), tar2.identity_key(0));
        // Same process on different hosts ⇒ different entities.
        assert_ne!(tar1.identity_key(0), tar1.identity_key(1));
        // Files keyed by absolute path only.
        assert_eq!(file("/etc/passwd").identity_key(0), file("/etc/passwd").identity_key(0));
        assert_ne!(file("/etc/passwd").identity_key(0), file("/etc/shadow").identity_key(0));
    }

    #[test]
    fn netconn_identity_is_5tuple() {
        let mk = |dst_port: u16| {
            EntityAttrs::NetConn(NetConnAttrs {
                src_ip: "10.0.0.5".into(),
                src_port: 50000,
                dst_ip: "192.168.29.128".into(),
                dst_port,
                protocol: Protocol::Tcp,
            })
        };
        assert_ne!(mk(80).identity_key(0), mk(443).identity_key(0));
        assert_eq!(mk(80).identity_key(0), mk(80).identity_key(0));
    }

    #[test]
    fn default_attributes_match_paper() {
        assert_eq!(EntityKind::File.default_attribute(), "name");
        assert_eq!(EntityKind::Process.default_attribute(), "exename");
        assert_eq!(EntityKind::NetConn.default_attribute(), "dstip");
        assert_eq!(EntityKind::Process.tbql_keyword(), "proc");
        assert_eq!(EntityKind::NetConn.tbql_keyword(), "ip");
    }

    #[test]
    fn attribute_access() {
        let f = file("/tmp/upload.tar");
        assert_eq!(f.get("name").as_deref(), Some("/tmp/upload.tar"));
        assert_eq!(f.get("path").as_deref(), Some("/tmp"));
        assert_eq!(f.get("exename"), None);
        assert_eq!(f.default_attribute_value(), "/tmp/upload.tar");
    }

    #[test]
    fn parent_dir_cases() {
        assert_eq!(parent_dir("/etc/passwd"), "/etc");
        assert_eq!(parent_dir("/vmlinuz"), "/");
        assert_eq!(parent_dir("relative"), "");
        assert_eq!(parent_dir("/a/b/c.txt"), "/a/b");
    }
}
