//! Audit log codecs.
//!
//! Monitoring agents ship collected records to the central database
//! (Section II). This module provides the two on-the-wire forms:
//!
//! * a compact length-prefixed **binary** codec (tag byte per call, varint-
//!   free fixed-width integers, length-prefixed strings) built on `bytes`,
//! * a human-readable **text** form, one record per line, loosely following
//!   sysdig's output (`ts host pid exe user:group call(args) = ret`).
//!
//! Both roundtrip exactly; property tests in `tests/` assert it.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use raptor_common::error::{Error, Result};
use raptor_common::time::{Duration, Timestamp};

use crate::syscall::{Protocol, Syscall, SyscallArgs, SyscallRecord};

const MAX_STR: usize = 64 * 1024;

fn put_str(buf: &mut BytesMut, s: &str) {
    debug_assert!(s.len() <= MAX_STR);
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<String> {
    if buf.remaining() < 4 {
        return Err(Error::audit("truncated string length"));
    }
    let len = buf.get_u32_le() as usize;
    if len > MAX_STR || buf.remaining() < len {
        return Err(Error::audit("truncated or oversized string"));
    }
    let raw = buf.copy_to_bytes(len);
    String::from_utf8(raw.to_vec()).map_err(|_| Error::audit("invalid utf-8 in record"))
}

fn call_tag(call: Syscall) -> u8 {
    Syscall::ALL.iter().position(|&c| c == call).unwrap() as u8
}

fn call_from_tag(tag: u8) -> Result<Syscall> {
    Syscall::ALL
        .get(tag as usize)
        .copied()
        .ok_or_else(|| Error::audit(format!("unknown syscall tag {tag}")))
}

/// Encodes one record onto `buf`.
pub fn encode_record(r: &SyscallRecord, buf: &mut BytesMut) {
    buf.put_i64_le(r.ts.0);
    buf.put_i64_le(r.latency.0);
    buf.put_u16_le(r.host);
    buf.put_u32_le(r.pid);
    put_str(buf, &r.exe);
    put_str(buf, &r.user);
    put_str(buf, &r.group);
    buf.put_u8(call_tag(r.call));
    buf.put_i64_le(r.ret);
    match &r.args {
        SyscallArgs::Open { path, fd } => {
            put_str(buf, path);
            buf.put_i32_le(*fd);
        }
        SyscallArgs::Close { fd } | SyscallArgs::Io { fd } => buf.put_i32_le(*fd),
        SyscallArgs::Exec { path, cmdline } => {
            put_str(buf, path);
            put_str(buf, cmdline);
        }
        SyscallArgs::Spawn { child_pid, child_exe } => {
            buf.put_u32_le(*child_pid);
            put_str(buf, child_exe);
        }
        SyscallArgs::Rename { old, new } => {
            put_str(buf, old);
            put_str(buf, new);
        }
        SyscallArgs::Socket { fd, protocol } => {
            buf.put_i32_le(*fd);
            buf.put_u8(matches!(protocol, Protocol::Udp) as u8);
        }
        SyscallArgs::Connect { fd, src_ip, src_port, dst_ip, dst_port } => {
            buf.put_i32_le(*fd);
            put_str(buf, src_ip);
            buf.put_u16_le(*src_port);
            put_str(buf, dst_ip);
            buf.put_u16_le(*dst_port);
        }
        SyscallArgs::Exit => {}
    }
}

/// Decodes one record from `buf`, advancing it.
pub fn decode_record(buf: &mut Bytes) -> Result<SyscallRecord> {
    if buf.remaining() < 8 + 8 + 2 + 4 {
        return Err(Error::audit("truncated record header"));
    }
    let ts = Timestamp(buf.get_i64_le());
    let latency = Duration(buf.get_i64_le());
    let host = buf.get_u16_le();
    let pid = buf.get_u32_le();
    let exe = get_str(buf)?;
    let user = get_str(buf)?;
    let group = get_str(buf)?;
    if buf.remaining() < 1 + 8 {
        return Err(Error::audit("truncated record body"));
    }
    let call = call_from_tag(buf.get_u8())?;
    let ret = buf.get_i64_le();
    let need_i32 = |buf: &mut Bytes| -> Result<i32> {
        if buf.remaining() < 4 {
            return Err(Error::audit("truncated args"));
        }
        Ok(buf.get_i32_le())
    };
    let args = match call {
        Syscall::Open => {
            let path = get_str(buf)?;
            SyscallArgs::Open { path, fd: need_i32(buf)? }
        }
        Syscall::Close => SyscallArgs::Close { fd: need_i32(buf)? },
        Syscall::Read
        | Syscall::Readv
        | Syscall::Write
        | Syscall::Writev
        | Syscall::Sendto
        | Syscall::Sendmsg
        | Syscall::Recvfrom
        | Syscall::Recvmsg => SyscallArgs::Io { fd: need_i32(buf)? },
        Syscall::Execve => SyscallArgs::Exec { path: get_str(buf)?, cmdline: get_str(buf)? },
        Syscall::Fork | Syscall::Clone => {
            if buf.remaining() < 4 {
                return Err(Error::audit("truncated spawn args"));
            }
            let child_pid = buf.get_u32_le();
            SyscallArgs::Spawn { child_pid, child_exe: get_str(buf)? }
        }
        Syscall::Rename => SyscallArgs::Rename { old: get_str(buf)?, new: get_str(buf)? },
        Syscall::Socket => {
            let fd = need_i32(buf)?;
            if buf.remaining() < 1 {
                return Err(Error::audit("truncated socket args"));
            }
            let protocol = if buf.get_u8() == 1 { Protocol::Udp } else { Protocol::Tcp };
            SyscallArgs::Socket { fd, protocol }
        }
        Syscall::Connect => {
            let fd = need_i32(buf)?;
            let src_ip = get_str(buf)?;
            if buf.remaining() < 2 {
                return Err(Error::audit("truncated connect args"));
            }
            let src_port = buf.get_u16_le();
            let dst_ip = get_str(buf)?;
            if buf.remaining() < 2 {
                return Err(Error::audit("truncated connect args"));
            }
            let dst_port = buf.get_u16_le();
            SyscallArgs::Connect { fd, src_ip, src_port, dst_ip, dst_port }
        }
        Syscall::Exit => SyscallArgs::Exit,
    };
    Ok(SyscallRecord { ts, latency, host, pid, exe, user, group, call, args, ret })
}

/// Encodes a batch with a count header.
pub fn encode_batch(records: &[SyscallRecord]) -> Bytes {
    let mut buf = BytesMut::with_capacity(records.len() * 64);
    buf.put_u64_le(records.len() as u64);
    for r in records {
        encode_record(r, &mut buf);
    }
    buf.freeze()
}

/// Decodes a batch produced by [`encode_batch`].
pub fn decode_batch(mut bytes: Bytes) -> Result<Vec<SyscallRecord>> {
    if bytes.remaining() < 8 {
        return Err(Error::audit("truncated batch header"));
    }
    let n = bytes.get_u64_le() as usize;
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        out.push(decode_record(&mut bytes)?);
    }
    Ok(out)
}

/// Renders one record as a sysdig-like text line.
pub fn to_text_line(r: &SyscallRecord) -> String {
    let args = match &r.args {
        SyscallArgs::Open { path, fd } => format!("path={path} fd={fd}"),
        SyscallArgs::Close { fd } => format!("fd={fd}"),
        SyscallArgs::Io { fd } => format!("fd={fd}"),
        SyscallArgs::Exec { path, cmdline } => format!("path={path} cmd={:?}", cmdline),
        SyscallArgs::Spawn { child_pid, child_exe } => {
            format!("child={child_pid} exe={child_exe}")
        }
        SyscallArgs::Rename { old, new } => format!("old={old} new={new}"),
        SyscallArgs::Socket { fd, protocol } => format!("fd={fd} proto={}", protocol.name()),
        SyscallArgs::Connect { fd, src_ip, src_port, dst_ip, dst_port } => {
            format!("fd={fd} src={src_ip}:{src_port} dst={dst_ip}:{dst_port}")
        }
        SyscallArgs::Exit => String::new(),
    };
    format!(
        "{} h{} {} {} {}:{} {}({}) = {}",
        r.ts.0,
        r.host,
        r.pid,
        r.exe,
        r.user,
        r.group,
        r.call.name(),
        args,
        r.ret
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<SyscallRecord> {
        let base = |call, args, ret| SyscallRecord {
            ts: Timestamp::from_millis(12345),
            latency: Duration::from_millis(2),
            host: 3,
            pid: 777,
            exe: "/usr/bin/curl".into(),
            user: "alice".into(),
            group: "users".into(),
            call,
            args,
            ret,
        };
        vec![
            base(Syscall::Open, SyscallArgs::Open { path: "/tmp/upload".into(), fd: 3 }, 3),
            base(Syscall::Read, SyscallArgs::Io { fd: 3 }, 8192),
            base(Syscall::Close, SyscallArgs::Close { fd: 3 }, 0),
            base(Syscall::Socket, SyscallArgs::Socket { fd: 4, protocol: Protocol::Udp }, 4),
            base(
                Syscall::Connect,
                SyscallArgs::Connect {
                    fd: 4,
                    src_ip: "10.0.0.5".into(),
                    src_port: 50123,
                    dst_ip: "192.168.29.128".into(),
                    dst_port: 443,
                },
                0,
            ),
            base(
                Syscall::Execve,
                SyscallArgs::Exec { path: "/bin/ls".into(), cmdline: "ls -la".into() },
                0,
            ),
            base(
                Syscall::Fork,
                SyscallArgs::Spawn { child_pid: 778, child_exe: "/bin/bash".into() },
                778,
            ),
            base(
                Syscall::Rename,
                SyscallArgs::Rename { old: "/tmp/a".into(), new: "/tmp/b".into() },
                0,
            ),
            base(Syscall::Exit, SyscallArgs::Exit, 0),
        ]
    }

    #[test]
    fn batch_roundtrip() {
        let records = sample_records();
        let encoded = encode_batch(&records);
        let decoded = decode_batch(encoded).unwrap();
        assert_eq!(records, decoded);
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let records = sample_records();
        let encoded = encode_batch(&records);
        for cut in [0, 1, 7, 9, 20, encoded.len() - 1] {
            let sliced = encoded.slice(..cut);
            assert!(decode_batch(sliced).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn bad_tag_rejected() {
        let mut buf = BytesMut::new();
        let r = &sample_records()[8];
        encode_record(r, &mut buf);
        // Corrupt the call tag (offset: 8+8+2+4 + (4+len(exe)) + ... compute
        // by scanning: easier to flip the known tag byte value).
        let mut raw = buf.to_vec();
        let tag_pos = raw.iter().position(|&b| b == call_tag(Syscall::Exit)).unwrap();
        raw[tag_pos] = 250;
        let res = decode_record(&mut Bytes::from(raw));
        assert!(res.is_err());
    }

    #[test]
    fn text_line_contains_key_fields() {
        let line = to_text_line(&sample_records()[4]);
        assert!(line.contains("connect"));
        assert!(line.contains("192.168.29.128:443"));
        assert!(line.contains("/usr/bin/curl"));
    }

    #[test]
    fn empty_batch() {
        let encoded = encode_batch(&[]);
        assert_eq!(decode_batch(encoded).unwrap(), Vec::new());
    }
}
