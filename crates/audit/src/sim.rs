//! Deterministic workload simulator.
//!
//! The paper's evaluation ran on a live server "frequently used by >15
//! active users" performing file manipulation, text editing and software
//! development, with the attacks executed on top so that "benign activities
//! significantly outnumber attack activities (55 million vs. thousands)".
//! We cannot ship that testbed, so this module generates the same *kind* of
//! traffic deterministically: a seeded [`Simulator`] exposes process-level
//! actions (open/read/write/exec/fork/connect/...) that are lowered to raw
//! [`SyscallRecord`]s, plus a [`BackgroundProfile`] that mixes benign user
//! behaviours. Attack cases (in `raptor-cases`) drive the same action API
//! with their IOC names, so malicious and benign records are
//! indistinguishable in form — exactly the property threat hunting needs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use raptor_common::time::{Duration, Timestamp};

use crate::syscall::{Protocol, Syscall, SyscallArgs, SyscallRecord};

/// A process handle inside the simulator.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Pid(pub u32);

#[derive(Clone, Debug)]
struct SimProcess {
    exe: String,
    user: String,
    group: String,
    next_fd: i32,
}

/// Deterministic syscall-record generator.
#[derive(Debug)]
pub struct Simulator {
    rng: StdRng,
    now: Timestamp,
    host: u16,
    next_pid: u32,
    next_src_port: u16,
    procs: raptor_common::FxHashMap<u32, SimProcess>,
    records: Vec<SyscallRecord>,
}

impl Simulator {
    pub fn new(seed: u64, start: Timestamp) -> Self {
        Simulator {
            rng: StdRng::seed_from_u64(seed),
            now: start,
            host: 0,
            next_pid: 1000,
            next_src_port: 40000,
            procs: Default::default(),
            records: Vec::new(),
        }
    }

    /// Sets the host id stamped on subsequent records.
    pub fn set_host(&mut self, host: u16) {
        self.host = host;
    }

    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// Advances the clock by exactly `d`.
    pub fn advance(&mut self, d: Duration) {
        self.now = self.now.plus(d);
    }

    /// Number of records generated so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Consumes the simulator, returning records sorted by timestamp.
    pub fn finish(mut self) -> Vec<SyscallRecord> {
        self.records.sort_by_key(|r| r.ts.0);
        self.records
    }

    fn tick(&mut self) -> (Timestamp, Duration) {
        // Inter-record gap: 20 µs – 2 ms; latency 5 µs – 500 µs. The clock
        // advances past each call's latency so successive calls never
        // overlap — a single kernel timeline, which the data-reduction merge
        // criterion (gap ≥ 0) relies on.
        let gap = Duration(self.rng.gen_range(20_000..2_000_000));
        let latency = Duration(self.rng.gen_range(5_000..500_000));
        self.now = self.now.plus(gap);
        let ts = self.now;
        self.now = self.now.plus(latency);
        (ts, latency)
    }

    fn push(&mut self, pid: u32, call: Syscall, args: SyscallArgs, ret: i64) {
        let (ts, latency) = self.tick();
        let p = self.procs.get(&pid).expect("record from unknown pid").clone();
        self.records.push(SyscallRecord {
            ts,
            latency,
            host: self.host,
            pid,
            exe: p.exe,
            user: p.user,
            group: p.group,
            call,
            args,
            ret,
        });
    }

    /// Registers a root process without a parent (e.g. a daemon already
    /// running when monitoring started).
    pub fn boot_process(&mut self, exe: &str, user: &str) -> Pid {
        let pid = self.next_pid;
        self.next_pid += 1;
        self.procs.insert(
            pid,
            SimProcess {
                exe: exe.to_string(),
                user: user.to_string(),
                group: user.to_string(),
                next_fd: 3,
            },
        );
        Pid(pid)
    }

    /// `parent` forks a child that keeps the parent's image.
    pub fn fork(&mut self, parent: Pid) -> Pid {
        let child_pid = self.next_pid;
        self.next_pid += 1;
        let p = self.procs[&parent.0].clone();
        self.procs.insert(child_pid, p.clone());
        self.push(
            parent.0,
            Syscall::Fork,
            SyscallArgs::Spawn { child_pid, child_exe: p.exe },
            child_pid as i64,
        );
        Pid(child_pid)
    }

    /// `pid` replaces its image with `path` (emits an `execve`).
    pub fn exec(&mut self, pid: Pid, path: &str, cmdline: &str) {
        self.push(
            pid.0,
            Syscall::Execve,
            SyscallArgs::Exec { path: path.to_string(), cmdline: cmdline.to_string() },
            0,
        );
        if let Some(p) = self.procs.get_mut(&pid.0) {
            p.exe = path.to_string();
        }
    }

    /// Convenience: fork + exec, the usual way a shell launches a tool.
    pub fn spawn(&mut self, parent: Pid, path: &str, cmdline: &str) -> Pid {
        let child = self.fork(parent);
        self.exec(child, path, cmdline);
        child
    }

    pub fn open(&mut self, pid: Pid, path: &str) -> i32 {
        let fd = {
            let p = self.procs.get_mut(&pid.0).expect("open from unknown pid");
            let fd = p.next_fd;
            p.next_fd += 1;
            fd
        };
        self.push(
            pid.0,
            Syscall::Open,
            SyscallArgs::Open { path: path.to_string(), fd },
            fd as i64,
        );
        fd
    }

    pub fn close(&mut self, pid: Pid, fd: i32) {
        self.push(pid.0, Syscall::Close, SyscallArgs::Close { fd }, 0);
    }

    /// One `read` call of `bytes` bytes on `fd`.
    pub fn read(&mut self, pid: Pid, fd: i32, bytes: u64) {
        self.push(pid.0, Syscall::Read, SyscallArgs::Io { fd }, bytes as i64);
    }

    pub fn write(&mut self, pid: Pid, fd: i32, bytes: u64) {
        self.push(pid.0, Syscall::Write, SyscallArgs::Io { fd }, bytes as i64);
    }

    /// Opens `path`, reads `total` bytes across `calls` syscalls, closes.
    pub fn read_file(&mut self, pid: Pid, path: &str, total: u64, calls: u32) {
        let fd = self.open(pid, path);
        let calls = calls.max(1) as u64;
        for i in 0..calls {
            let share = total / calls + if i == 0 { total % calls } else { 0 };
            self.read(pid, fd, share);
        }
        self.close(pid, fd);
    }

    /// Opens `path`, writes `total` bytes across `calls` syscalls, closes.
    pub fn write_file(&mut self, pid: Pid, path: &str, total: u64, calls: u32) {
        let fd = self.open(pid, path);
        let calls = calls.max(1) as u64;
        for i in 0..calls {
            let share = total / calls + if i == 0 { total % calls } else { 0 };
            self.write(pid, fd, share);
        }
        self.close(pid, fd);
    }

    /// Creates a TCP socket and connects it; returns the fd.
    pub fn connect(&mut self, pid: Pid, dst_ip: &str, dst_port: u16) -> i32 {
        let fd = {
            let p = self.procs.get_mut(&pid.0).expect("connect from unknown pid");
            let fd = p.next_fd;
            p.next_fd += 1;
            fd
        };
        self.push(
            pid.0,
            Syscall::Socket,
            SyscallArgs::Socket { fd, protocol: Protocol::Tcp },
            fd as i64,
        );
        let src_port = self.next_src_port;
        self.next_src_port = self.next_src_port.wrapping_add(1).max(40000);
        self.push(
            pid.0,
            Syscall::Connect,
            SyscallArgs::Connect {
                fd,
                src_ip: "10.0.0.5".to_string(),
                src_port,
                dst_ip: dst_ip.to_string(),
                dst_port,
            },
            0,
        );
        fd
    }

    /// Sends `total` bytes over a connected socket across `calls` syscalls.
    pub fn send(&mut self, pid: Pid, fd: i32, total: u64, calls: u32) {
        let calls = calls.max(1) as u64;
        for i in 0..calls {
            let share = total / calls + if i == 0 { total % calls } else { 0 };
            self.push(pid.0, Syscall::Sendto, SyscallArgs::Io { fd }, share as i64);
        }
    }

    /// Receives `total` bytes over a connected socket across `calls` calls.
    pub fn recv(&mut self, pid: Pid, fd: i32, total: u64, calls: u32) {
        let calls = calls.max(1) as u64;
        for i in 0..calls {
            let share = total / calls + if i == 0 { total % calls } else { 0 };
            self.push(pid.0, Syscall::Recvfrom, SyscallArgs::Io { fd }, share as i64);
        }
    }

    pub fn rename(&mut self, pid: Pid, old: &str, new: &str) {
        self.push(
            pid.0,
            Syscall::Rename,
            SyscallArgs::Rename { old: old.to_string(), new: new.to_string() },
            0,
        );
    }

    pub fn exit(&mut self, pid: Pid) {
        self.push(pid.0, Syscall::Exit, SyscallArgs::Exit, 0);
        self.procs.remove(&pid.0);
    }

    /// Random helper exposed for workload authors.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// Parameters of the benign background workload.
#[derive(Clone, Debug)]
pub struct BackgroundProfile {
    /// Number of simulated interactive users.
    pub users: usize,
    /// Number of benign "sessions" (tool invocations) to generate.
    pub sessions: usize,
    /// Distinct benign file paths per user.
    pub files_per_user: usize,
    /// Distinct benign remote IPs.
    pub remote_ips: usize,
}

impl Default for BackgroundProfile {
    fn default() -> Self {
        BackgroundProfile { users: 15, sessions: 200, files_per_user: 40, remote_ips: 30 }
    }
}

const BENIGN_TOOLS: &[(&str, &str)] = &[
    ("/bin/cat", "cat"),
    ("/usr/bin/vim", "vim"),
    ("/usr/bin/gcc", "gcc"),
    ("/usr/bin/make", "make"),
    ("/usr/bin/python3", "python3"),
    ("/usr/bin/grep", "grep"),
    ("/bin/cp", "cp"),
    ("/usr/bin/git", "git"),
    ("/usr/bin/ssh", "ssh"),
    ("/usr/bin/firefox", "firefox"),
];

/// Generates benign background traffic: per-session a user shell forks a
/// tool which reads/writes files, occasionally talks to the network, and
/// exits. Mirrors the "file manipulation, text editing, and software
/// development" mix from the paper's testbed.
pub fn generate_background(sim: &mut Simulator, profile: &BackgroundProfile) {
    let shells: Vec<Pid> =
        (0..profile.users).map(|u| sim.boot_process("/bin/bash", &format!("user{u}"))).collect();
    for s in 0..profile.sessions {
        let u = sim.rng().gen_range(0..profile.users);
        let shell = shells[u];
        let (tool, cmd) = BENIGN_TOOLS[sim.rng().gen_range(0..BENIGN_TOOLS.len())];
        let tool = tool.to_string();
        let cmd = cmd.to_string();
        let p = sim.spawn(shell, &tool, &cmd);
        let n_files = sim.rng().gen_range(1..4usize);
        for _ in 0..n_files {
            let f = sim.rng().gen_range(0..profile.files_per_user);
            let path = format!("/home/user{u}/work/doc{f}.txt");
            let total = sim.rng().gen_range(512..65_536u64);
            let calls = sim.rng().gen_range(1..8u32);
            if sim.rng().gen_bool(0.5) {
                sim.read_file(p, &path, total, calls);
            } else {
                sim.write_file(p, &path, total, calls);
            }
        }
        // Builds read system headers; browsers/git talk to the network.
        if cmd == "gcc" || cmd == "make" {
            sim.read_file(p, "/usr/include/stdio.h", 8192, 2);
            sim.write_file(p, &format!("/home/user{u}/work/build/out{s}.o"), 32_768, 4);
        }
        if cmd == "firefox" || cmd == "git" || cmd == "ssh" {
            let ip =
                format!("151.101.{}.{}", sim.rng().gen_range(0..64), sim.rng().gen_range(1..255));
            let _ = ip; // deterministic pool below keeps ip count bounded
            let pool_ip = format!(
                "151.101.{}.{}",
                sim.rng().gen_range(0..4),
                1 + sim.rng().gen_range(0..profile.remote_ips) as u8
            );
            let fd = sim.connect(p, &pool_ip, 443);
            let sent = sim_rand_bytes(sim);
            sim.send(p, fd, sent, 3);
            let received = sim_rand_bytes(sim);
            sim.recv(p, fd, received, 5);
            sim.close(p, fd);
        }
        sim.exit(p);
        let gap = sim_rand_gap_ms(sim);
        sim.advance(Duration::from_millis(gap));
    }
}

fn sim_rand_bytes(sim: &mut Simulator) -> u64 {
    sim.rng().gen_range(1_024..262_144)
}

fn sim_rand_gap_ms(sim: &mut Simulator) -> i64 {
    sim.rng().gen_range(10..2_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::LogParser;

    #[test]
    fn deterministic_under_same_seed() {
        let mk = || {
            let mut sim = Simulator::new(42, Timestamp::from_secs(1_000_000));
            let shell = sim.boot_process("/bin/bash", "root");
            let tar = sim.spawn(shell, "/bin/tar", "tar cf /tmp/x /etc");
            sim.read_file(tar, "/etc/passwd", 2048, 3);
            sim.exit(tar);
            sim.finish()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn records_are_time_ordered() {
        let mut sim = Simulator::new(7, Timestamp::from_secs(0));
        generate_background(
            &mut sim,
            &BackgroundProfile { users: 3, sessions: 20, ..Default::default() },
        );
        let records = sim.finish();
        assert!(records.windows(2).all(|w| w[0].ts <= w[1].ts));
    }

    #[test]
    fn background_parses_into_entities_and_events() {
        let mut sim = Simulator::new(7, Timestamp::from_secs(0));
        generate_background(
            &mut sim,
            &BackgroundProfile { users: 5, sessions: 50, ..Default::default() },
        );
        let records = sim.finish();
        let log = LogParser::parse(&records);
        assert!(log.events.len() > 100, "events: {}", log.events.len());
        assert!(log.entities.len() > 20, "entities: {}", log.entities.len());
        // Benign noise must include file and process events at minimum.
        use crate::event::EventKind;
        assert!(log.events.iter().any(|e| e.kind == EventKind::File));
        assert!(log.events.iter().any(|e| e.kind == EventKind::Process));
        assert!(log.events.iter().any(|e| e.kind == EventKind::Network));
    }

    #[test]
    fn scripted_attack_records_interleave_with_noise() {
        let mut sim = Simulator::new(1, Timestamp::from_secs(0));
        generate_background(
            &mut sim,
            &BackgroundProfile { users: 2, sessions: 10, ..Default::default() },
        );
        // The Figure 2 data-leak chain.
        let shell = sim.boot_process("/bin/bash", "root");
        let tar = sim.spawn(shell, "/bin/tar", "tar");
        sim.read_file(tar, "/etc/passwd", 4096, 4);
        sim.write_file(tar, "/tmp/upload.tar", 4096, 4);
        sim.exit(tar);
        let records = sim.finish();
        let log = LogParser::parse(&records);
        let tar_reads: Vec<_> = log
            .events
            .iter()
            .filter(|e| {
                log.entity(e.subject).attrs.get("exename").as_deref() == Some("/bin/tar")
                    && e.op == crate::event::Operation::Read
            })
            .collect();
        assert!(!tar_reads.is_empty());
    }

    #[test]
    fn fd_table_isolated_per_process() {
        let mut sim = Simulator::new(3, Timestamp::from_secs(0));
        let a = sim.boot_process("/bin/a", "u");
        let b = sim.boot_process("/bin/b", "u");
        let fd_a = sim.open(a, "/tmp/1");
        let fd_b = sim.open(b, "/tmp/2");
        // fds allocated independently.
        assert_eq!(fd_a, 3);
        assert_eq!(fd_b, 3);
        sim.read(a, fd_a, 10);
        sim.read(b, fd_b, 10);
        let log = LogParser::parse(&sim.finish());
        let objs: Vec<String> = log
            .events
            .iter()
            .filter(|e| e.op == crate::event::Operation::Read)
            .map(|e| log.entity(e.object).attrs.get("name").unwrap())
            .collect();
        assert_eq!(objs, vec!["/tmp/1".to_string(), "/tmp/2".to_string()]);
    }
}
