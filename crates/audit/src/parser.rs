//! The audit log parser.
//!
//! Lifts a stream of raw [`SyscallRecord`]s into system entities and system
//! events. The parser is stateful, exactly like a real auditing pipeline:
//!
//! * a **process table** maps live (host, pid) to the process entity created
//!   for the current executable image (an `execve` replaces the image and
//!   therefore creates a *new* process entity — the identity rule is
//!   (exename, pid)),
//! * per-process **fd tables** map file descriptors to the file or network
//!   connection they designate, so a `read(fd)` can be attributed to the
//!   right object entity and categorized as a file or network event.
//!
//! Entities are deduplicated through their identity keys (Section III-A), so
//! re-opening `/etc/passwd` ten times yields one file entity and ten events.

use raptor_common::hash::FxHashMap;
use raptor_common::ids::{EntityId, EventId};

use crate::entity::{parent_dir, Entity, EntityAttrs, FileAttrs, NetConnAttrs, ProcessAttrs};
use crate::event::{EventKind, Operation, SystemEvent};
use crate::syscall::{Syscall, SyscallArgs, SyscallRecord};

/// The output of parsing: deduplicated entities plus the event sequence.
#[derive(Debug, Default)]
pub struct ParsedLog {
    pub entities: Vec<Entity>,
    pub events: Vec<SystemEvent>,
    /// identity key → entity id (kept so parsing can resume incrementally).
    key_to_id: FxHashMap<String, EntityId>,
}

impl ParsedLog {
    pub fn entity(&self, id: EntityId) -> &Entity {
        &self.entities[id.index()]
    }

    /// Looks up an entity by its identity key.
    pub fn entity_by_key(&self, key: &str) -> Option<&Entity> {
        self.key_to_id.get(key).map(|&id| self.entity(id))
    }

    fn intern_entity(&mut self, host: u16, attrs: EntityAttrs) -> EntityId {
        let key = attrs.identity_key(host);
        if let Some(&id) = self.key_to_id.get(&key) {
            return id;
        }
        let id = EntityId::from_usize(self.entities.len());
        self.entities.push(Entity { id, host, attrs });
        self.key_to_id.insert(key, id);
        id
    }
}

/// What an open file descriptor designates.
#[derive(Clone, Debug)]
enum FdTarget {
    File(EntityId),
    /// A socket before `connect` (no 5-tuple yet, so no entity yet).
    UnconnectedSocket(crate::syscall::Protocol),
    NetConn(EntityId),
}

#[derive(Debug)]
struct LiveProcess {
    entity: EntityId,
    fds: FxHashMap<i32, FdTarget>,
}

/// Stateful parser; feed records in timestamp order.
#[derive(Debug)]
pub struct LogParser {
    log: ParsedLog,
    /// (host, pid) → live process state.
    procs: FxHashMap<(u16, u32), LiveProcess>,
    /// Events whose raw call failed are dropped unless this is set; the
    /// failure code is preserved either way on emitted events.
    pub keep_failed: bool,
}

impl Default for LogParser {
    fn default() -> Self {
        Self::new()
    }
}

impl LogParser {
    pub fn new() -> Self {
        LogParser { log: ParsedLog::default(), procs: FxHashMap::default(), keep_failed: true }
    }

    /// Parses an entire batch of records.
    pub fn parse(records: &[SyscallRecord]) -> ParsedLog {
        let mut p = LogParser::new();
        for r in records {
            p.feed(r);
        }
        p.finish()
    }

    /// Consumes the parser, returning the parsed log.
    pub fn finish(self) -> ParsedLog {
        self.log
    }

    /// Returns the process entity for a record's calling process, creating
    /// the process (and its table entry) on first sight.
    fn subject_for(&mut self, r: &SyscallRecord) -> EntityId {
        if let Some(lp) = self.procs.get(&(r.host, r.pid)) {
            // The auditing layer reports the exe on every record; if it
            // changed without an observed execve (lost record), re-key.
            let current = &self.log.entities[lp.entity.index()];
            if let EntityAttrs::Process(p) = &current.attrs {
                if p.exename == r.exe {
                    return lp.entity;
                }
            }
        }
        let attrs = EntityAttrs::Process(ProcessAttrs {
            pid: r.pid,
            exename: r.exe.clone(),
            user: r.user.clone(),
            group: r.group.clone(),
            cmd: r.exe.clone(),
        });
        let id = self.log.intern_entity(r.host, attrs);
        let fds = match self.procs.remove(&(r.host, r.pid)) {
            Some(old) => old.fds, // image replaced: fds survive execve
            None => FxHashMap::default(),
        };
        self.procs.insert((r.host, r.pid), LiveProcess { entity: id, fds });
        id
    }

    fn file_entity(&mut self, host: u16, path: &str, user: &str, group: &str) -> EntityId {
        let attrs = EntityAttrs::File(FileAttrs {
            name: path.to_string(),
            path: parent_dir(path),
            user: user.to_string(),
            group: group.to_string(),
        });
        self.log.intern_entity(host, attrs)
    }

    fn emit(
        &mut self,
        r: &SyscallRecord,
        subject: EntityId,
        object: EntityId,
        op: Operation,
        kind: EventKind,
        amount: u64,
    ) {
        if r.failed() && !self.keep_failed {
            return;
        }
        let id = EventId::from_usize(self.log.events.len());
        self.log.events.push(SystemEvent {
            id,
            subject,
            object,
            op,
            kind,
            start: r.ts,
            end: r.end(),
            amount,
            fail_code: if r.failed() { (-r.ret) as i32 } else { 0 },
            host: r.host,
        });
    }

    /// Feeds one record.
    pub fn feed(&mut self, r: &SyscallRecord) {
        let subject = self.subject_for(r);
        match (&r.call, &r.args) {
            (Syscall::Open, SyscallArgs::Open { path, fd }) => {
                let file = self.file_entity(r.host, path, &r.user, &r.group);
                if !r.failed() {
                    self.with_proc(r, |lp| {
                        lp.fds.insert(*fd, FdTarget::File(file));
                    });
                }
            }
            (Syscall::Close, SyscallArgs::Close { fd }) => {
                self.with_proc(r, |lp| {
                    lp.fds.remove(fd);
                });
            }
            (Syscall::Socket, SyscallArgs::Socket { fd, protocol }) if !r.failed() => {
                let proto = *protocol;
                self.with_proc(r, |lp| {
                    lp.fds.insert(*fd, FdTarget::UnconnectedSocket(proto));
                });
            }
            (Syscall::Connect, SyscallArgs::Connect { fd, src_ip, src_port, dst_ip, dst_port }) => {
                let proto = match self.fd_target(r, *fd) {
                    Some(FdTarget::UnconnectedSocket(p)) => p,
                    Some(FdTarget::NetConn(_)) | Some(FdTarget::File(_)) | None => {
                        crate::syscall::Protocol::Tcp
                    }
                };
                let attrs = EntityAttrs::NetConn(NetConnAttrs {
                    src_ip: src_ip.clone(),
                    src_port: *src_port,
                    dst_ip: dst_ip.clone(),
                    dst_port: *dst_port,
                    protocol: proto,
                });
                let conn = self.log.intern_entity(r.host, attrs);
                if !r.failed() {
                    self.with_proc(r, |lp| {
                        lp.fds.insert(*fd, FdTarget::NetConn(conn));
                    });
                }
                self.emit(r, subject, conn, Operation::Connect, EventKind::Network, 0);
            }
            (
                Syscall::Read | Syscall::Readv | Syscall::Recvfrom | Syscall::Recvmsg,
                SyscallArgs::Io { fd },
            ) => {
                let amount = r.ret.max(0) as u64;
                match self.fd_target(r, *fd) {
                    Some(FdTarget::File(f)) => {
                        self.emit(r, subject, f, Operation::Read, EventKind::File, amount)
                    }
                    Some(FdTarget::NetConn(c)) => {
                        self.emit(r, subject, c, Operation::Read, EventKind::Network, amount)
                    }
                    _ => {} // reads on unknown fds (inherited/untracked) are dropped
                }
            }
            (
                Syscall::Write | Syscall::Writev | Syscall::Sendto | Syscall::Sendmsg,
                SyscallArgs::Io { fd },
            ) => {
                let amount = r.ret.max(0) as u64;
                match self.fd_target(r, *fd) {
                    Some(FdTarget::File(f)) => {
                        self.emit(r, subject, f, Operation::Write, EventKind::File, amount)
                    }
                    Some(FdTarget::NetConn(c)) => {
                        self.emit(r, subject, c, Operation::Write, EventKind::Network, amount)
                    }
                    _ => {}
                }
            }
            (Syscall::Execve, SyscallArgs::Exec { path, cmdline }) => {
                // File event: the process executes the image file.
                let file = self.file_entity(r.host, path, &r.user, &r.group);
                self.emit(r, subject, file, Operation::Execute, EventKind::File, 0);
                if !r.failed() {
                    // The image is replaced: a new process entity begins.
                    let attrs = EntityAttrs::Process(ProcessAttrs {
                        pid: r.pid,
                        exename: path.clone(),
                        user: r.user.clone(),
                        group: r.group.clone(),
                        cmd: cmdline.clone(),
                    });
                    let new_proc = self.log.intern_entity(r.host, attrs);
                    // Process event: old image starts the new one.
                    if new_proc != subject {
                        self.emit(r, subject, new_proc, Operation::Start, EventKind::Process, 0);
                    }
                    let fds =
                        self.procs.remove(&(r.host, r.pid)).map(|lp| lp.fds).unwrap_or_default();
                    self.procs.insert((r.host, r.pid), LiveProcess { entity: new_proc, fds });
                }
            }
            (Syscall::Fork | Syscall::Clone, SyscallArgs::Spawn { child_pid, child_exe }) => {
                if r.failed() {
                    return;
                }
                let attrs = EntityAttrs::Process(ProcessAttrs {
                    pid: *child_pid,
                    exename: child_exe.clone(),
                    user: r.user.clone(),
                    group: r.group.clone(),
                    cmd: child_exe.clone(),
                });
                let child = self.log.intern_entity(r.host, attrs);
                // Child inherits the parent's fd table (as fork does).
                let inherited =
                    self.procs.get(&(r.host, r.pid)).map(|lp| lp.fds.clone()).unwrap_or_default();
                self.procs
                    .insert((r.host, *child_pid), LiveProcess { entity: child, fds: inherited });
                self.emit(r, subject, child, Operation::Start, EventKind::Process, 0);
            }
            (Syscall::Rename, SyscallArgs::Rename { old, new: _ }) => {
                let file = self.file_entity(r.host, old, &r.user, &r.group);
                self.emit(r, subject, file, Operation::Rename, EventKind::File, 0);
            }
            (Syscall::Exit, SyscallArgs::Exit) => {
                self.emit(r, subject, subject, Operation::End, EventKind::Process, 0);
                self.procs.remove(&(r.host, r.pid));
            }
            // A record whose args don't match its call is malformed; a real
            // pipeline logs and skips it.
            _ => {}
        }
    }

    fn with_proc(&mut self, r: &SyscallRecord, f: impl FnOnce(&mut LiveProcess)) {
        if let Some(lp) = self.procs.get_mut(&(r.host, r.pid)) {
            f(lp);
        }
    }

    fn fd_target(&self, r: &SyscallRecord, fd: i32) -> Option<FdTarget> {
        self.procs.get(&(r.host, r.pid))?.fds.get(&fd).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syscall::Protocol;
    use raptor_common::time::{Duration, Timestamp};

    fn rec(
        ts: i64,
        pid: u32,
        exe: &str,
        call: Syscall,
        args: SyscallArgs,
        ret: i64,
    ) -> SyscallRecord {
        SyscallRecord {
            ts: Timestamp::from_secs(ts),
            latency: Duration::from_millis(1),
            host: 0,
            pid,
            exe: exe.into(),
            user: "root".into(),
            group: "root".into(),
            call,
            args,
            ret,
        }
    }

    #[test]
    fn open_read_close_produces_one_file_event() {
        let records = vec![
            rec(
                1,
                10,
                "/bin/tar",
                Syscall::Open,
                SyscallArgs::Open { path: "/etc/passwd".into(), fd: 3 },
                3,
            ),
            rec(2, 10, "/bin/tar", Syscall::Read, SyscallArgs::Io { fd: 3 }, 4096),
            rec(3, 10, "/bin/tar", Syscall::Close, SyscallArgs::Close { fd: 3 }, 0),
        ];
        let log = LogParser::parse(&records);
        assert_eq!(log.events.len(), 1);
        let e = &log.events[0];
        assert_eq!(e.op, Operation::Read);
        assert_eq!(e.kind, EventKind::File);
        assert_eq!(e.amount, 4096);
        assert_eq!(log.entity(e.subject).attrs.get("exename").as_deref(), Some("/bin/tar"));
        assert_eq!(log.entity(e.object).attrs.get("name").as_deref(), Some("/etc/passwd"));
    }

    #[test]
    fn reads_after_close_are_dropped() {
        let records = vec![
            rec(
                1,
                10,
                "/bin/cat",
                Syscall::Open,
                SyscallArgs::Open { path: "/tmp/a".into(), fd: 3 },
                3,
            ),
            rec(2, 10, "/bin/cat", Syscall::Close, SyscallArgs::Close { fd: 3 }, 0),
            rec(3, 10, "/bin/cat", Syscall::Read, SyscallArgs::Io { fd: 3 }, 100),
        ];
        let log = LogParser::parse(&records);
        assert_eq!(log.events.len(), 0);
    }

    #[test]
    fn socket_connect_send_is_network_write() {
        let records = vec![
            rec(
                1,
                20,
                "/usr/bin/curl",
                Syscall::Socket,
                SyscallArgs::Socket { fd: 4, protocol: Protocol::Tcp },
                4,
            ),
            rec(
                2,
                20,
                "/usr/bin/curl",
                Syscall::Connect,
                SyscallArgs::Connect {
                    fd: 4,
                    src_ip: "10.0.0.5".into(),
                    src_port: 51000,
                    dst_ip: "192.168.29.128".into(),
                    dst_port: 443,
                },
                0,
            ),
            rec(3, 20, "/usr/bin/curl", Syscall::Sendto, SyscallArgs::Io { fd: 4 }, 1500),
        ];
        let log = LogParser::parse(&records);
        assert_eq!(log.events.len(), 2);
        assert_eq!(log.events[0].op, Operation::Connect);
        assert_eq!(log.events[0].kind, EventKind::Network);
        assert_eq!(log.events[1].op, Operation::Write);
        assert_eq!(log.events[1].kind, EventKind::Network);
        assert_eq!(log.events[1].amount, 1500);
        let conn = log.entity(log.events[1].object);
        assert_eq!(conn.attrs.get("dstip").as_deref(), Some("192.168.29.128"));
    }

    #[test]
    fn execve_creates_new_process_entity_and_two_events() {
        let records = vec![rec(
            1,
            30,
            "/bin/bash",
            Syscall::Execve,
            SyscallArgs::Exec {
                path: "/usr/bin/gpg".into(),
                cmdline: "gpg -c upload.tar.bz2".into(),
            },
            0,
        )];
        let log = LogParser::parse(&records);
        // Execute (file) + Start (process).
        assert_eq!(log.events.len(), 2);
        assert_eq!(log.events[0].op, Operation::Execute);
        assert_eq!(log.events[0].kind, EventKind::File);
        assert_eq!(log.events[1].op, Operation::Start);
        assert_eq!(log.events[1].kind, EventKind::Process);
        // Old and new process entities are distinct (identity = exename+pid).
        assert_ne!(log.events[1].subject, log.events[1].object);
        let new_proc = log.entity(log.events[1].object);
        assert_eq!(new_proc.attrs.get("exename").as_deref(), Some("/usr/bin/gpg"));
        assert_eq!(new_proc.attrs.get("cmd").as_deref(), Some("gpg -c upload.tar.bz2"));
    }

    #[test]
    fn fork_inherits_fds() {
        let records = vec![
            rec(
                1,
                40,
                "/bin/bash",
                Syscall::Open,
                SyscallArgs::Open { path: "/tmp/x".into(), fd: 5 },
                5,
            ),
            rec(
                2,
                40,
                "/bin/bash",
                Syscall::Fork,
                SyscallArgs::Spawn { child_pid: 41, child_exe: "/bin/bash".into() },
                41,
            ),
            rec(3, 41, "/bin/bash", Syscall::Write, SyscallArgs::Io { fd: 5 }, 64),
        ];
        let log = LogParser::parse(&records);
        let write = log.events.iter().find(|e| e.op == Operation::Write).unwrap();
        assert_eq!(log.entity(write.object).attrs.get("name").as_deref(), Some("/tmp/x"));
        // Parent and child are distinct entities despite same exe.
        let start = log.events.iter().find(|e| e.op == Operation::Start).unwrap();
        assert_ne!(start.subject, start.object);
    }

    #[test]
    fn entities_are_deduplicated() {
        let mut records = Vec::new();
        for i in 0..10 {
            records.push(rec(
                i,
                50,
                "/bin/cat",
                Syscall::Open,
                SyscallArgs::Open { path: "/etc/passwd".into(), fd: 3 },
                3,
            ));
            records.push(rec(i, 50, "/bin/cat", Syscall::Read, SyscallArgs::Io { fd: 3 }, 100));
            records.push(rec(i, 50, "/bin/cat", Syscall::Close, SyscallArgs::Close { fd: 3 }, 0));
        }
        let log = LogParser::parse(&records);
        assert_eq!(log.events.len(), 10);
        // One process + one file entity.
        assert_eq!(log.entities.len(), 2);
    }

    #[test]
    fn failed_calls_keep_fail_code() {
        let records = vec![
            rec(
                1,
                60,
                "/bin/cat",
                Syscall::Open,
                SyscallArgs::Open { path: "/etc/shadow".into(), fd: -1 },
                -13,
            ),
            rec(
                2,
                60,
                "/bin/cat",
                Syscall::Execve,
                SyscallArgs::Exec { path: "/bin/ls".into(), cmdline: "ls".into() },
                -13,
            ),
        ];
        let log = LogParser::parse(&records);
        // Failed open emits nothing (no fd), failed execve emits the file
        // Execute attempt with the failure code but no process switch.
        assert_eq!(log.events.len(), 1);
        assert_eq!(log.events[0].op, Operation::Execute);
        assert_eq!(log.events[0].fail_code, 13);
    }

    #[test]
    fn exit_emits_end_event() {
        let records = vec![rec(1, 70, "/bin/sleep", Syscall::Exit, SyscallArgs::Exit, 0)];
        let log = LogParser::parse(&records);
        assert_eq!(log.events.len(), 1);
        assert_eq!(log.events[0].op, Operation::End);
        assert_eq!(log.events[0].subject, log.events[0].object);
    }

    #[test]
    fn hosts_partition_entities() {
        let mut r1 = rec(
            1,
            80,
            "/bin/cat",
            Syscall::Open,
            SyscallArgs::Open { path: "/tmp/f".into(), fd: 3 },
            3,
        );
        let mut r2 = r1.clone();
        r2.host = 1;
        r1.host = 0;
        let log = LogParser::parse(&[r1, r2]);
        // Same path on two hosts ⇒ two file entities, two process entities.
        assert_eq!(log.entities.len(), 4);
    }
}
