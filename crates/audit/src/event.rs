//! System events and their attributes (Table III).
//!
//! A system event is the interaction ⟨subject_entity, operation,
//! object_entity⟩ between two system entities: the subject is always a
//! process; the object may be a file, a process, or a network connection.
//! Events are categorized by their object kind into file events, process
//! events, and network events (Section III-A).
//!
//! | Attribute group | Attributes                                       |
//! |-----------------|--------------------------------------------------|
//! | Operation       | Type (Read, Write, Execute, Start, End, Rename…) |
//! | Time            | Start Time, End Time, Duration                   |
//! | Misc.           | Subject ID, Object ID, Data Amount, Failure Code |

use raptor_common::ids::{EntityId, EventId};
use raptor_common::time::{Duration, Timestamp};

/// Operation type of a system event. This is also the TBQL `⟨op⟩`
/// vocabulary (`read`, `write`, `execute`, `start`, …).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum Operation {
    Read,
    Write,
    Execute,
    Start,
    End,
    Rename,
    Connect,
}

impl Operation {
    pub fn name(self) -> &'static str {
        match self {
            Operation::Read => "read",
            Operation::Write => "write",
            Operation::Execute => "execute",
            Operation::Start => "start",
            Operation::End => "end",
            Operation::Rename => "rename",
            Operation::Connect => "connect",
        }
    }

    pub fn from_name(s: &str) -> Option<Operation> {
        Some(match s {
            "read" => Operation::Read,
            "write" => Operation::Write,
            "execute" => Operation::Execute,
            "start" => Operation::Start,
            "end" => Operation::End,
            "rename" => Operation::Rename,
            "connect" => Operation::Connect,
            _ => return None,
        })
    }

    pub const ALL: [Operation; 7] = [
        Operation::Read,
        Operation::Write,
        Operation::Execute,
        Operation::Start,
        Operation::End,
        Operation::Rename,
        Operation::Connect,
    ];
}

/// Event category, determined by the object entity's kind.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EventKind {
    File,
    Process,
    Network,
}

impl EventKind {
    pub fn name(self) -> &'static str {
        match self {
            EventKind::File => "file",
            EventKind::Process => "process",
            EventKind::Network => "network",
        }
    }
}

/// A parsed system event.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SystemEvent {
    pub id: EventId,
    /// Initiating process entity.
    pub subject: EntityId,
    /// Target entity (file / process / network connection).
    pub object: EntityId,
    /// Interaction type.
    pub op: Operation,
    /// Category, redundant with the object's kind but kept on the event so
    /// queries never need an extra entity lookup.
    pub kind: EventKind,
    pub start: Timestamp,
    pub end: Timestamp,
    /// Bytes transferred, when meaningful (I/O operations).
    pub amount: u64,
    /// 0 on success, the errno otherwise.
    pub fail_code: i32,
    /// Monitored host.
    pub host: u16,
}

impl SystemEvent {
    /// Duration attribute of Table III.
    pub fn duration(&self) -> Duration {
        self.end.since(self.start)
    }

    /// Generic attribute access used by query return clauses.
    pub fn get(&self, attr: &str) -> Option<String> {
        Some(match attr {
            "id" => self.id.to_string(),
            "optype" => self.op.name().to_string(),
            "starttime" => self.start.0.to_string(),
            "endtime" => self.end.0.to_string(),
            "duration" => self.duration().0.to_string(),
            "subject" => self.subject.to_string(),
            "object" => self.object.to_string(),
            "amount" => self.amount.to_string(),
            "failcode" => self.fail_code.to_string(),
            "host" => self.host.to_string(),
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn evt() -> SystemEvent {
        SystemEvent {
            id: EventId(7),
            subject: EntityId(1),
            object: EntityId(2),
            op: Operation::Read,
            kind: EventKind::File,
            start: Timestamp::from_secs(100),
            end: Timestamp::from_secs(101),
            amount: 4096,
            fail_code: 0,
            host: 0,
        }
    }

    #[test]
    fn operation_names_roundtrip() {
        for op in Operation::ALL {
            assert_eq!(Operation::from_name(op.name()), Some(op));
        }
        assert_eq!(Operation::from_name("mmap"), None);
    }

    #[test]
    fn duration_is_end_minus_start() {
        assert_eq!(evt().duration(), Duration::from_secs(1));
    }

    #[test]
    fn attribute_access() {
        let e = evt();
        assert_eq!(e.get("optype").as_deref(), Some("read"));
        assert_eq!(e.get("amount").as_deref(), Some("4096"));
        assert_eq!(e.get("bogus"), None);
    }
}
