//! Data reduction (Section III-B).
//!
//! System audit logs contain many excessive events between the same entity
//! pair because the OS finishes one logical read/write by spreading the data
//! over many system calls. Following the CCS'16 log-reduction criteria the
//! paper adopts, two events `e1(u1, v1)`, `e2(u2, v2)` with `e1` before `e2`
//! are merged iff
//!
//! ```text
//! u1 = u2  &&  v1 = v2  &&  e1.operationType = e2.operationType
//!          &&  0 ≤ e2.startTime − e1.endTime ≤ threshold
//! ```
//!
//! and the merged event `em` gets `em.startTime = e1.startTime`,
//! `em.endTime = e2.endTime`, `em.dataAmount = e1.dataAmount +
//! e2.dataAmount`. The paper chose a threshold of **1 second** after
//! experimenting ("reasonable reduction performance ... with no false events
//! generated").

use raptor_common::hash::FxHashMap;
use raptor_common::ids::{EntityId, EventId};
use raptor_common::time::Duration;

use crate::event::{Operation, SystemEvent};

/// The paper's chosen merge threshold.
pub const DEFAULT_THRESHOLD: Duration = Duration(raptor_common::time::NANOS_PER_SEC);

/// Outcome statistics of a reduction pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReductionStats {
    pub before: usize,
    pub after: usize,
}

impl ReductionStats {
    /// Reduction factor (events before / events after).
    pub fn factor(&self) -> f64 {
        if self.after == 0 {
            return 1.0;
        }
        self.before as f64 / self.after as f64
    }
}

/// Merges excessive events in place and renumbers event ids densely.
///
/// `events` must be sorted by start time (the parser emits them in arrival
/// order, which is start-time order). Only *adjacent-in-time* events of the
/// same (subject, object, operation) group merge, and only when the gap
/// between them is within `threshold`; merging is transitive along a burst.
pub fn merge_events(events: &mut Vec<SystemEvent>, threshold: Duration) -> ReductionStats {
    let before = events.len();
    // Index of the open (still mergeable) event per group.
    let mut open: FxHashMap<(EntityId, EntityId, Operation, u16), usize> = FxHashMap::default();
    let mut out: Vec<SystemEvent> = Vec::with_capacity(events.len());
    for e in events.drain(..) {
        let key = (e.subject, e.object, e.op, e.host);
        if let Some(&idx) = open.get(&key) {
            let prev = &mut out[idx];
            let gap = e.start.since(prev.end);
            if gap >= Duration::ZERO && gap <= threshold && e.fail_code == prev.fail_code {
                prev.end = e.end;
                prev.amount += e.amount;
                continue;
            }
        }
        open.insert(key, out.len());
        out.push(e);
    }
    for (i, e) in out.iter_mut().enumerate() {
        e.id = EventId::from_usize(i);
    }
    *events = out;
    ReductionStats { before, after: events.len() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use raptor_common::time::Timestamp;

    fn evt(
        id: u32,
        subj: u32,
        obj: u32,
        op: Operation,
        start_ms: i64,
        end_ms: i64,
        amount: u64,
    ) -> SystemEvent {
        SystemEvent {
            id: EventId(id),
            subject: EntityId(subj),
            object: EntityId(obj),
            op,
            kind: EventKind::File,
            start: Timestamp::from_millis(start_ms),
            end: Timestamp::from_millis(end_ms),
            amount,
            fail_code: 0,
            host: 0,
        }
    }

    #[test]
    fn burst_merges_into_one() {
        // 5 reads, 100 ms apart — a classic buffered file read.
        let mut events: Vec<SystemEvent> = (0..5)
            .map(|i| evt(i, 1, 2, Operation::Read, i as i64 * 100, i as i64 * 100 + 10, 4096))
            .collect();
        let stats = merge_events(&mut events, DEFAULT_THRESHOLD);
        assert_eq!(stats, ReductionStats { before: 5, after: 1 });
        let m = &events[0];
        assert_eq!(m.start, Timestamp::from_millis(0));
        assert_eq!(m.end, Timestamp::from_millis(410));
        assert_eq!(m.amount, 5 * 4096);
        assert!((stats.factor() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn gap_beyond_threshold_blocks_merge() {
        let mut events = vec![
            evt(0, 1, 2, Operation::Read, 0, 10, 100),
            evt(1, 1, 2, Operation::Read, 2000, 2010, 100), // 1.99 s gap
        ];
        let stats = merge_events(&mut events, DEFAULT_THRESHOLD);
        assert_eq!(stats.after, 2);
    }

    #[test]
    fn different_operation_blocks_merge() {
        let mut events = vec![
            evt(0, 1, 2, Operation::Read, 0, 10, 100),
            evt(1, 1, 2, Operation::Write, 20, 30, 100),
        ];
        assert_eq!(merge_events(&mut events, DEFAULT_THRESHOLD).after, 2);
    }

    #[test]
    fn different_entity_pair_blocks_merge() {
        let mut events = vec![
            evt(0, 1, 2, Operation::Read, 0, 10, 100),
            evt(1, 1, 3, Operation::Read, 20, 30, 100),
            evt(2, 4, 2, Operation::Read, 40, 50, 100),
        ];
        assert_eq!(merge_events(&mut events, DEFAULT_THRESHOLD).after, 3);
    }

    #[test]
    fn interleaved_groups_merge_independently() {
        // Two processes alternately reading their own files.
        let mut events = vec![
            evt(0, 1, 10, Operation::Read, 0, 10, 1),
            evt(1, 2, 20, Operation::Read, 5, 15, 1),
            evt(2, 1, 10, Operation::Read, 100, 110, 1),
            evt(3, 2, 20, Operation::Read, 105, 115, 1),
        ];
        let stats = merge_events(&mut events, DEFAULT_THRESHOLD);
        assert_eq!(stats.after, 2);
        assert_eq!(events[0].amount, 2);
        assert_eq!(events[1].amount, 2);
    }

    #[test]
    fn ids_renumbered_densely() {
        let mut events = vec![
            evt(0, 1, 2, Operation::Read, 0, 10, 1),
            evt(1, 1, 2, Operation::Read, 20, 30, 1),
            evt(2, 3, 4, Operation::Write, 40, 50, 1),
        ];
        merge_events(&mut events, DEFAULT_THRESHOLD);
        let ids: Vec<u32> = events.iter().map(|e| e.id.0).collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn zero_threshold_merges_only_contiguous() {
        let mut events = vec![
            evt(0, 1, 2, Operation::Read, 0, 10, 1),
            evt(1, 1, 2, Operation::Read, 10, 20, 1), // gap = 0: merges
            evt(2, 1, 2, Operation::Read, 21, 30, 1), // gap = 1ms: blocked
        ];
        let stats = merge_events(&mut events, Duration::ZERO);
        assert_eq!(stats.after, 2);
    }

    #[test]
    fn failed_events_do_not_merge_with_successes() {
        let mut a = evt(0, 1, 2, Operation::Read, 0, 10, 1);
        let mut b = evt(1, 1, 2, Operation::Read, 20, 30, 1);
        a.fail_code = 0;
        b.fail_code = 13;
        let mut events = vec![a, b];
        assert_eq!(merge_events(&mut events, DEFAULT_THRESHOLD).after, 2);
    }
}
