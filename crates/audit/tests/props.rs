//! Property-based tests: codec round-trip and data-reduction invariants.

use proptest::prelude::*;
use raptor_audit::codec::{decode_batch, encode_batch};
use raptor_audit::reduce::merge_events;
use raptor_audit::syscall::{Protocol, Syscall, SyscallArgs, SyscallRecord};
use raptor_audit::{EventKind, Operation, SystemEvent};
use raptor_common::ids::{EntityId, EventId};
use raptor_common::time::{Duration, Timestamp};

fn arb_args() -> impl Strategy<Value = (Syscall, SyscallArgs)> {
    prop_oneof![
        ("[ -~]{1,40}", 0..64i32)
            .prop_map(|(p, fd)| (Syscall::Open, SyscallArgs::Open { path: p, fd })),
        (0..64i32).prop_map(|fd| (Syscall::Close, SyscallArgs::Close { fd })),
        (0..64i32).prop_map(|fd| (Syscall::Read, SyscallArgs::Io { fd })),
        (0..64i32).prop_map(|fd| (Syscall::Sendto, SyscallArgs::Io { fd })),
        ("[ -~]{1,40}", "[ -~]{0,40}")
            .prop_map(|(p, c)| (Syscall::Execve, SyscallArgs::Exec { path: p, cmdline: c })),
        (1u32..99999, "[ -~]{1,30}").prop_map(|(pid, exe)| (
            Syscall::Fork,
            SyscallArgs::Spawn { child_pid: pid, child_exe: exe }
        )),
        ("[ -~]{1,30}", "[ -~]{1,30}")
            .prop_map(|(a, b)| (Syscall::Rename, SyscallArgs::Rename { old: a, new: b })),
        (0..64i32, proptest::bool::ANY).prop_map(|(fd, udp)| {
            (
                Syscall::Socket,
                SyscallArgs::Socket {
                    fd,
                    protocol: if udp { Protocol::Udp } else { Protocol::Tcp },
                },
            )
        }),
        (0..64i32, "[0-9.]{7,15}", 1u16.., "[0-9.]{7,15}", 1u16..).prop_map(
            |(fd, si, sp, di, dp)| {
                (
                    Syscall::Connect,
                    SyscallArgs::Connect { fd, src_ip: si, src_port: sp, dst_ip: di, dst_port: dp },
                )
            }
        ),
        Just((Syscall::Exit, SyscallArgs::Exit)),
    ]
}

fn arb_record() -> impl Strategy<Value = SyscallRecord> {
    (
        0i64..1_000_000_000_000,
        0i64..1_000_000,
        0u16..4,
        1u32..100_000,
        "[ -~]{1,30}",
        "[a-z]{1,10}",
        arb_args(),
        -200i64..1_000_000,
    )
        .prop_map(|(ts, lat, host, pid, exe, user, (call, args), ret)| SyscallRecord {
            ts: Timestamp(ts),
            latency: Duration(lat),
            host,
            pid,
            exe,
            user: user.clone(),
            group: user,
            call,
            args,
            ret,
        })
}

fn arb_event(groups: usize) -> impl Strategy<Value = SystemEvent> {
    (0..groups, 0..groups, 0..3usize, 0i64..10_000, 0i64..50, 0u64..10_000).prop_map(
        move |(s, o, op, start_ms, dur_ms, amount)| SystemEvent {
            id: EventId(0),
            subject: EntityId(s as u32),
            object: EntityId((o + groups) as u32),
            op: [Operation::Read, Operation::Write, Operation::Connect][op],
            kind: EventKind::File,
            start: Timestamp::from_millis(start_ms),
            end: Timestamp::from_millis(start_ms + dur_ms),
            amount,
            fail_code: 0,
            host: 0,
        },
    )
}

proptest! {
    /// The binary codec round-trips arbitrary record batches exactly.
    #[test]
    fn codec_roundtrip(records in proptest::collection::vec(arb_record(), 0..40)) {
        let encoded = encode_batch(&records);
        let decoded = decode_batch(encoded).unwrap();
        prop_assert_eq!(records, decoded);
    }

    /// Truncated batches fail gracefully (error, never panic).
    #[test]
    fn codec_truncation_never_panics(
        records in proptest::collection::vec(arb_record(), 1..10),
        cut_frac in 0.0f64..1.0,
    ) {
        let encoded = encode_batch(&records);
        let cut = ((encoded.len() as f64) * cut_frac) as usize;
        if cut < encoded.len() {
            let _ = decode_batch(encoded.slice(..cut)); // must not panic
        }
    }

    /// Data reduction: never increases event count, conserves total data
    /// amount, never merges across different (subject, object, op) groups,
    /// and is idempotent.
    #[test]
    fn reduction_invariants(mut events in proptest::collection::vec(arb_event(4), 0..60)) {
        events.sort_by_key(|e| e.start.0);
        for (i, e) in events.iter_mut().enumerate() {
            e.id = EventId(i as u32);
        }
        let total_before: u64 = events.iter().map(|e| e.amount).sum();
        let count_before = events.len();
        let mut merged = events.clone();
        let stats = merge_events(&mut merged, Duration::from_millis(500));
        prop_assert_eq!(stats.before, count_before);
        prop_assert!(merged.len() <= count_before);
        let total_after: u64 = merged.iter().map(|e| e.amount).sum();
        prop_assert_eq!(total_before, total_after, "data amount conserved");
        // Ids are dense.
        for (i, e) in merged.iter().enumerate() {
            prop_assert_eq!(e.id.index(), i);
        }
        // Per-group counts only shrink; groups never mix.
        use std::collections::HashMap;
        let group = |e: &SystemEvent| (e.subject, e.object, e.op);
        let mut before: HashMap<_, usize> = HashMap::new();
        for e in &events {
            *before.entry(group(e)).or_default() += 1;
        }
        let mut after: HashMap<_, usize> = HashMap::new();
        for e in &merged {
            *after.entry(group(e)).or_default() += 1;
        }
        for (g, n) in &after {
            prop_assert!(before.get(g).is_some_and(|b| b >= n));
        }
        // Idempotence.
        let mut twice = merged.clone();
        merge_events(&mut twice, Duration::from_millis(500));
        prop_assert_eq!(twice.len(), merged.len());
    }
}
